// GNU-compat golden tests for `head`/`tail` edge forms — `tail +N`,
// `-n +N`, the -c byte modes (`head -c N`, `tail -c N`, `tail -c +N`),
// count 0, counts larger than the input, missing trailing newlines, and
// overflowing counts — each validated against GNU coreutils output and
// executed through three runtimes: the batch staged runner, the streaming
// dataflow runtime, and the streaming runtime with spilling forced
// (threshold 1). Also pins the preserve-vs-re-terminate audit for the
// other text::lines-based built-ins: sed/rev preserve a missing final
// newline like their GNU counterparts, grep/cut/uniq re-terminate.
//
// Overflow counts saturate (ISSUE 3's "reject or clamp": we clamp), so
// `head -n 99999999999999999999` means "all of it" instead of
// signed-overflow garbage; GNU rejects counts past uintmax_t with an
// error, and below that accepts them with the same all-of-it meaning.

#include <gtest/gtest.h>

#include <limits>

#include "compile/plan.h"
#include "exec/runner.h"
#include "exec/thread_pool.h"
#include "prep/literals.h"
#include "stream/dataflow.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

struct GoldenCase {
  const char* command;
  const char* input;
  const char* expected;  // GNU-verified bytes
};

// Mirrors compile::lower_plan's streamability classification for a
// hand-built sequential stage, so the streaming run exercises the
// stream-chain node exactly as a compiled pipeline would.
exec::ExecStage make_stage(const cmd::CommandPtr& command) {
  exec::ExecStage stage;
  stage.command = command;
  if (command->streamability() == cmd::Streamability::kWindow)
    stage.memory_class = exec::MemoryClass::kWindowStream;
  else if (command->streamability() != cmd::Streamability::kNone)
    stage.memory_class = exec::MemoryClass::kStatelessStream;
  return stage;
}

class HeadTailGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(HeadTailGolden, BatchStreamAndSpillAgree) {
  const GoldenCase& c = GetParam();
  std::string error;
  cmd::CommandPtr command = cmd::make_command_line(c.command, &error);
  ASSERT_NE(command, nullptr) << c.command << ": " << error;

  // Direct execution (the batch runner's sequential floor).
  EXPECT_EQ(command->run(c.input), c.expected) << c.command;

  std::vector<exec::ExecStage> stages{make_stage(command)};
  exec::ThreadPool pool(2);
  EXPECT_EQ(exec::run_serial(stages, c.input).output, c.expected)
      << c.command << " (serial)";

  for (std::size_t spill : {std::size_t(64) << 20, std::size_t(1)}) {
    for (std::size_t block : {std::size_t(4), std::size_t(1) << 20}) {
      stream::StreamConfig config;
      config.parallelism = 2;
      config.block_size = block;
      config.spill_threshold = spill;
      std::string output;
      stream::StreamResult r = stream::run_streaming_string(
          stages, c.input, &output, pool, config);
      ASSERT_TRUE(r.ok) << c.command << ": " << r.error;
      EXPECT_EQ(output, c.expected)
          << c.command << " (stream, block=" << block << ", spill=" << spill
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeForms, HeadTailGolden,
    ::testing::Values(
        // Count 0 and counts larger than the input.
        GoldenCase{"head -n 0", "a\nb\nc\n", ""},
        GoldenCase{"head -n 10", "a\nb\n", "a\nb\n"},
        GoldenCase{"tail -n 0", "a\nb\nc\n", ""},
        GoldenCase{"tail -n 10", "a\nb\n", "a\nb\n"},
        // Missing trailing newline is preserved (GNU head/tail copy bytes).
        GoldenCase{"head -n 2", "a\nb", "a\nb"},
        GoldenCase{"head -n 1", "a\nb", "a\n"},
        GoldenCase{"tail -n 1", "a\nb", "b"},
        GoldenCase{"tail -n 2", "a\nb\nc", "b\nc"},
        // Bundled counts (GNU-style getopt spellings).
        GoldenCase{"head -n2", "a\nb\nc\n", "a\nb\n"},
        GoldenCase{"tail -n2", "a\nb\nc\n", "b\nc\n"},
        GoldenCase{"tail -n+2", "a\nb\nc\n", "b\nc\n"},
        // tail +N / -n +N forms, including the +0 == +1 GNU quirk.
        GoldenCase{"tail +2", "a\nb\nc\n", "b\nc\n"},
        GoldenCase{"tail -n +2", "a\nb\nc\n", "b\nc\n"},
        GoldenCase{"tail -n +1", "a\nb\nc\n", "a\nb\nc\n"},
        GoldenCase{"tail -n +0", "a\nb\nc\n", "a\nb\nc\n"},
        GoldenCase{"tail +4", "a\nb\nc\n", ""},
        GoldenCase{"tail -n +3", "a\nb\nc", "c"},
        // Overflowing counts saturate to "all of it" / "skip everything".
        GoldenCase{"head -n 99999999999999999999", "a\nb\nc\n", "a\nb\nc\n"},
        GoldenCase{"tail -n 99999999999999999999", "a\nb", "a\nb"},
        GoldenCase{"tail -n +99999999999999999999", "a\nb\nc\n", ""},
        GoldenCase{"head -99999999999999999999", "a\nb", "a\nb"},
        // The re-terminate audit: sed and rev preserve like GNU...
        GoldenCase{"sed s/b/B/", "a\nb", "a\nB"},
        GoldenCase{"sed 2q", "a\nb\nc\n", "a\nb\n"},
        GoldenCase{"sed 2q", "a\nb", "a\nb"},
        GoldenCase{"sed 2d;3q", "a\nb\nc\n", "a\nc\n"},
        GoldenCase{"rev", "ab\ncd", "ba\ndc"},
        // ...while grep, cut, and uniq re-terminate, also like GNU.
        GoldenCase{"grep b", "a\nb", "b\n"},
        GoldenCase{"cut -c 1", "ax\nby", "a\nb\n"},
        GoldenCase{"uniq", "a\na\nb", "a\nb\n"},
        // Degenerate inputs.
        GoldenCase{"head -n 2", "", ""}, GoldenCase{"tail -n 2", "", ""},
        GoldenCase{"head -n 1", "\n\n", "\n"},
        GoldenCase{"tail +2", "", ""}));

INSTANTIATE_TEST_SUITE_P(
    ByteModes, HeadTailGolden,
    ::testing::Values(
        // head -c / tail -c copy bytes: record boundaries are irrelevant
        // and a missing final newline is inherently preserved. (Records
        // stay <= 3 bytes: the harness's block=4/spill=1 combo caps a
        // single record at 4 buffered bytes.)
        GoldenCase{"head -c 5", "ab\ncd\nef\n", "ab\ncd"},
        GoldenCase{"head -c 6", "ab\ncd\nef\n", "ab\ncd\n"},
        GoldenCase{"head -c4", "ab\ncd\n", "ab\nc"},
        GoldenCase{"head -c 0", "ab\n", ""},
        GoldenCase{"head -c 100", "ab\n", "ab\n"},
        GoldenCase{"tail -c 4", "ab\ncd\nef\n", "\nef\n"},
        GoldenCase{"tail -c 2", "ab\ncd", "cd"},
        GoldenCase{"tail -c2", "ab\ncd\n", "d\n"},
        GoldenCase{"tail -c 0", "ab\n", ""},
        GoldenCase{"tail -c 100", "ab\n", "ab\n"},
        // tail -c +N starts at byte N; +0 behaves like +1, as with lines.
        GoldenCase{"tail -c +4", "ab\ncd\nef\n", "cd\nef\n"},
        GoldenCase{"tail -c +1", "ab\n", "ab\n"},
        GoldenCase{"tail -c +0", "ab\n", "ab\n"},
        GoldenCase{"tail -c+5", "ab\ncd\nef\n", "d\nef\n"},
        GoldenCase{"tail -c +99", "ab\n", ""},
        // Saturating counts: huge means "all of it" / "skip everything",
        // never signed-overflow garbage (the pre-fix std::stol in literal
        // extraction aborted the whole compile on these).
        GoldenCase{"head -c 99999999999999999999", "a\nb\nc\n", "a\nb\nc\n"},
        GoldenCase{"tail -c 99999999999999999999", "a\nb", "a\nb"},
        GoldenCase{"tail -c +99999999999999999999", "a\nb\nc\n", ""},
        // Degenerate inputs.
        GoldenCase{"head -c 3", "", ""}, GoldenCase{"tail -c 3", "", ""},
        GoldenCase{"tail -c +2", "", ""}));

TEST(HeadTailParse, RejectsNonNumericCounts) {
  for (const char* line :
       {"head -n 9a9", "head -n", "tail -n x", "tail +2x", "head -n -3",
        "head -c x", "head -c", "head -c 9a9", "tail -c", "tail -c 1x",
        "tail -c +x", "head -c -5"}) {
    std::string error;
    EXPECT_EQ(cmd::make_command_line(line, &error), nullptr) << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(HeadTailParse, SaturatedCountsInOtherBuiltins) {
  // The same clamp guards every count-parsing built-in: sort -k field
  // numbers, cut position ranges, sed addresses, fmt widths.
  std::string error;
  auto sort_cmd =
      cmd::make_command_line("sort -k99999999999999999999", &error);
  ASSERT_NE(sort_cmd, nullptr) << error;
  // A field number no line has: comparison falls back to the whole line.
  EXPECT_EQ(sort_cmd->run("b x\na y\n"), "a y\nb x\n");

  auto cut_cmd =
      cmd::make_command_line("cut -c 99999999999999999999-", &error);
  ASSERT_NE(cut_cmd, nullptr) << error;
  EXPECT_EQ(cut_cmd->run("abc\n"), "\n");  // selects nothing on every line

  auto sed_cmd =
      cmd::make_command_line("sed 99999999999999999999d", &error);
  ASSERT_NE(sed_cmd, nullptr) << error;
  EXPECT_EQ(sed_cmd->run("a\nb\n"), "a\nb\n");  // address beyond every line

  auto fmt_cmd = cmd::make_command_line("fmt -w99999999999999999999", &error);
  ASSERT_NE(fmt_cmd, nullptr) << error;
  EXPECT_EQ(fmt_cmd->run("a b\n"), "a b\n");
}

// A head/tail bound wider than every certification probe
// (synth::kProbeCountCap) makes the command look like `cat` on every
// observation, so synthesis certifies a concat combiner that is wrong
// exactly on inputs too big to probe. The planner must keep such stages
// sequential (their declared prefix/window lowering is exact at any size).
TEST(ProbeCoverageGuard, HugeBoundsStaySequential) {
  synth::SynthesisCache cache;
  for (const char* pipeline :
       {"head -n 1000000", "head -c 100000000", "tail -n 1000000",
        "tail -c 100000000", "sed 5000q", "sed 5000d",
        "sed '5000s/a/b/'"}) {
    auto parsed = compile::parse_pipeline(pipeline);
    ASSERT_TRUE(parsed.has_value()) << pipeline;
    compile::Plan plan = compile::compile_pipeline(*parsed, cache);
    ASSERT_EQ(plan.stages.size(), 1u);
    EXPECT_FALSE(plan.stages[0].parallel) << pipeline;
  }
  // The guard is targeted: an ordinary certified-parallel stage stays
  // parallel. (Small-N head/tail are sequential anyway — their correct
  // rerun combiners fail the reduction threshold — so wc is the control.)
  auto parsed = compile::parse_pipeline("wc -l");
  ASSERT_TRUE(parsed.has_value());
  compile::Plan plan = compile::compile_pipeline(*parsed, cache);
  EXPECT_TRUE(plan.stages[0].parallel);
}

TEST(ProbeCoverageGuard, BatchHugeTailMatchesDirectExecution) {
  // Regression: bound 5000 > kProbeCountCap but < the 10000 input lines —
  // the pre-guard parallel concat plan returned all 10000 lines.
  std::string input;
  for (int i = 0; i < 10000; ++i) input += std::to_string(i) + "\n";
  synth::SynthesisCache cache;
  auto parsed = compile::parse_pipeline("tail -n 5000");
  ASSERT_TRUE(parsed.has_value());
  compile::Plan plan = compile::compile_pipeline(*parsed, cache);
  auto stages = compile::lower_plan(plan);
  exec::ThreadPool pool(4);
  std::string out = exec::run_pipeline(stages, input, pool, {4, true}).output;
  EXPECT_EQ(out, stages[0].command->run(input));
}

TEST(HeadTailParse, LiteralExtractionSaturatesHugeCounts) {
  // Regression: synthesis preprocessing extracted numeric literals with a
  // throwing std::stol, so `head -c 99999999999999999999` aborted the
  // whole compile with std::out_of_range before the saturating command
  // parser ever ran. The extractor now clamps like parse_count.
  prep::CommandLiterals head_lits = prep::extract_literals(
      {"head", "-c", "99999999999999999999"}, /*seed=*/1);
  ASSERT_FALSE(head_lits.numbers.empty());
  EXPECT_EQ(head_lits.numbers[0], std::numeric_limits<long>::max());

  prep::CommandLiterals sed_lits =
      prep::extract_literals({"sed", "99999999999999999999q"}, /*seed=*/1);
  ASSERT_FALSE(sed_lits.numbers.empty());
  EXPECT_EQ(sed_lits.numbers[0], std::numeric_limits<long>::max());
}

}  // namespace
}  // namespace kq
