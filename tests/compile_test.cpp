// Tests for the pipeline compiler: parsing, plan construction (which
// stages parallelize, which stay sequential), the elimination optimization
// (Theorem 5), and end-to-end equivalence of compiled parallel pipelines
// with serial execution — including the §2 word-frequency example.

#include <gtest/gtest.h>

#include "compile/optimize.h"
#include "compile/pipeline.h"
#include "compile/plan.h"

namespace kq::compile {
namespace {

// ------------------------------------------------------------- parsing --

TEST(ParsePipeline, SplitsStages) {
  auto p = parse_pipeline("tr A-Z a-z | sort | uniq -c");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->stages.size(), 3u);
  EXPECT_EQ(p->stages[0].argv[0], "tr");
  EXPECT_EQ(p->stages[2].display, "uniq -c");
  EXPECT_FALSE(p->had_leading_cat);
}

TEST(ParsePipeline, DropsLeadingCat) {
  auto p = parse_pipeline("cat $IN | sort | uniq");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->had_leading_cat);
  EXPECT_EQ(p->leading_cat_operand, "$IN");
  EXPECT_EQ(p->stages.size(), 2u);
}

TEST(ParsePipeline, QuotedPipeCharacter) {
  auto p = parse_pipeline("grep '|' | wc -l");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->stages.size(), 2u);
  EXPECT_EQ(p->stages[0].argv[1], "|");
}

TEST(ParsePipeline, RejectsEmptyStage) {
  EXPECT_FALSE(parse_pipeline("sort | | uniq").has_value());
  EXPECT_FALSE(parse_pipeline("", nullptr).has_value());
}

// ----------------------------------------------------------------- plan --

struct Compiled {
  Plan plan;
  std::vector<exec::ExecStage> stages;
};

Compiled compile_line(const std::string& script,
                      synth::SynthesisCache& cache) {
  auto parsed = parse_pipeline(script);
  EXPECT_TRUE(parsed.has_value()) << script;
  Plan plan = compile_pipeline(*parsed, cache);
  eliminate_intermediate_combiners(plan);
  auto stages = lower_plan(plan);
  return {std::move(plan), std::move(stages)};
}

TEST(Plan, WordFrequencyExample) {
  // The §2 pipeline: tr -cs stays sequential (rerun, no reduction);
  // tr A-Z a-z parallelizes with its combiner eliminated before sort;
  // sort merges; uniq -c stitches; sort -rn merges.
  synth::SynthesisCache cache;
  auto c = compile_line(
      "cat $IN | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | "
      "sort -rn",
      cache);
  ASSERT_EQ(c.plan.total(), 5);
  const auto& s = c.plan.stages;
  EXPECT_FALSE(s[0].parallel);         // tr -cs ... sequential
  EXPECT_TRUE(s[0].sequential_rerun);
  EXPECT_TRUE(s[1].parallel);          // tr A-Z a-z
  EXPECT_TRUE(s[1].eliminate);         // concat before parallel sort
  EXPECT_TRUE(s[2].parallel);          // sort
  EXPECT_FALSE(s[2].eliminate);
  EXPECT_TRUE(s[3].parallel);          // uniq -c
  EXPECT_TRUE(s[4].parallel);          // sort -rn
  EXPECT_EQ(c.plan.parallelized(), 4);
  EXPECT_EQ(c.plan.eliminated(), 1);
}

TEST(Plan, UnknownCommandStaysSerial) {
  synth::SynthesisCache cache;
  auto parsed = parse_pipeline("frobnicate | sort");
  ASSERT_TRUE(parsed.has_value());
  Plan plan = compile_pipeline(*parsed, cache);
  EXPECT_FALSE(plan.stages[0].parallel);
  EXPECT_EQ(plan.stages[0].command, nullptr);
  EXPECT_TRUE(plan.stages[1].parallel);
}

TEST(Plan, TrDeleteNewlineNotEliminated) {
  // tr -d '\n' has a concat combiner but breaks the Theorem 5
  // newline-termination precondition.
  synth::SynthesisCache cache;
  auto c = compile_line("tr -d ',' | tr -d '\\n' | wc -c", cache);
  EXPECT_TRUE(c.plan.stages[1].parallel);
  EXPECT_FALSE(c.plan.stages[1].eliminate);
}

TEST(Plan, LastStageNeverEliminated) {
  synth::SynthesisCache cache;
  auto c = compile_line("tr A-Z a-z | sed s/a/b/", cache);
  EXPECT_FALSE(c.plan.stages.back().eliminate);
}

TEST(Plan, EliminationRequiresParallelSuccessor) {
  synth::SynthesisCache cache;
  // grep (concat) followed by sed 2q (rerun-only, sequential because it
  // does not reduce... actually 2q reduces heavily; use an unknown command
  // to force a serial successor).
  auto parsed = parse_pipeline("tr A-Z a-z | frobnicate");
  ASSERT_TRUE(parsed.has_value());
  Plan plan = compile_pipeline(*parsed, cache);
  eliminate_intermediate_combiners(plan);
  EXPECT_FALSE(plan.stages[0].eliminate);
}

// ------------------------------------------------- end-to-end execution --

std::string gutenberg_sample() {
  std::string text;
  const char* sentences[] = {
      "It was the best of times it was the worst of times",
      "Call me Ishmael some years ago never mind how long",
      "In the beginning God created the heaven and the earth",
      "It is a truth universally acknowledged that a single man",
  };
  for (int i = 0; i < 120; ++i) {
    text += sentences[i % 4];
    text.push_back('\n');
  }
  return text;
}

class PipelineEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineEquivalence, ParallelMatchesSerial) {
  const std::string script = GetParam();
  synth::SynthesisCache cache;
  auto parsed = parse_pipeline(script);
  ASSERT_TRUE(parsed.has_value());
  Plan plan = compile_pipeline(*parsed, cache);
  eliminate_intermediate_combiners(plan);
  auto stages = lower_plan(plan);

  std::string input = gutenberg_sample();
  exec::RunResult serial = exec::run_serial(stages, input);
  exec::ThreadPool pool(4);
  for (int k : {2, 3, 5}) {
    exec::RunResult unopt =
        exec::run_pipeline(stages, input, pool, {k, false});
    EXPECT_EQ(unopt.output, serial.output)
        << script << " (unoptimized, k=" << k << ")";
    exec::RunResult opt = exec::run_pipeline(stages, input, pool, {k, true});
    EXPECT_EQ(opt.output, serial.output)
        << script << " (optimized, k=" << k << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoreScripts, PipelineEquivalence,
    ::testing::Values(
        "tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn",
        "tr A-Z a-z | sort",
        "sort | uniq",
        "sort | uniq -c | sort -rn",
        "grep 'the' | wc -l",
        "tr -s ' ' '\\n' | sort -u",
        "cut -d ' ' -f 1 | sort | uniq -c",
        "sed s/the/THE/ | grep -c THE",
        "awk '{print NF}' | sort -n | uniq -c",
        "rev | sort | rev",
        "tr -d '\\n' | wc -c",
        "grep -v '^$' | head -n 5"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return "script_" + std::to_string(info.index);
    });

}  // namespace
}  // namespace kq::compile
