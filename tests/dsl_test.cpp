// Tests for the combiner DSL: sizes, printing, legal domains, the big-step
// semantics of every operator (Figure 6), candidate enumeration (including
// the paper's exact space sizes), and k-way generalization.

#include <gtest/gtest.h>

#include "dsl/domain.h"
#include "dsl/enumerate.h"
#include "dsl/eval.h"
#include "dsl/kway.h"
#include "unixcmd/registry.h"

namespace kq::dsl {
namespace {

std::optional<std::string> ev(const Combiner& g, std::string_view y1,
                              std::string_view y2) {
  return eval(g, y1, y2);
}

// ------------------------------------------------------------- size -----

TEST(Size, MatchesPaperExamples) {
  // Example 2 of the appendix: |add| = 3, |fbfa| = 6, |saf| = 5.
  EXPECT_EQ(size(combiner_add()), 3);
  Combiner fbfa{make_unary(Op::kFront, ' ',
                           make_unary(Op::kBack, ',',
                                      make_unary(Op::kFuse, '\t',
                                                 make_leaf(Op::kAdd)))),
                false, nullptr, ""};
  EXPECT_EQ(size(fbfa), 6);
  EXPECT_EQ(size(combiner_stitch2_add_first(' ')), 5);
}

TEST(Size, OtherRepresentatives) {
  EXPECT_EQ(size(combiner_concat()), 3);
  EXPECT_EQ(size(combiner_back_add('\n')), 4);
  EXPECT_EQ(size(combiner_stitch_first()), 4);
  EXPECT_EQ(size(combiner_offset_add(' ')), 4);
  EXPECT_EQ(size(combiner_rerun()), 3);
}

// ------------------------------------------------------------ printing --

TEST(Print, Table10Style) {
  EXPECT_EQ(to_string(combiner_concat()), "(concat a b)");
  EXPECT_EQ(to_string(swapped(combiner_concat())), "(concat b a)");
  EXPECT_EQ(to_string(combiner_back_add('\n')), "((back '\\n' add) a b)");
  EXPECT_EQ(to_string(combiner_stitch2_add_first(' ')),
            "((stitch2 ' ' add first) a b)");
  EXPECT_EQ(to_string(combiner_merge("-rn")), "(merge('-rn') a b)");
  EXPECT_EQ(to_string(combiner_rerun()), "(rerun a b)");
}

TEST(Print, Classification) {
  EXPECT_EQ(combiner_concat().cls(), OpClass::kRec);
  EXPECT_EQ(combiner_stitch_first().cls(), OpClass::kStruct);
  EXPECT_EQ(combiner_merge("").cls(), OpClass::kRun);
}

// -------------------------------------------------------------- domains --

TEST(Domain, Add) {
  EXPECT_TRUE(legal(combiner_add(), "042"));
  EXPECT_FALSE(legal(combiner_add(), ""));
  EXPECT_FALSE(legal(combiner_add(), "42\n"));
}

TEST(Domain, BackAdd) {
  EXPECT_TRUE(legal(combiner_back_add('\n'), "42\n"));
  EXPECT_FALSE(legal(combiner_back_add('\n'), "4\n2\n"));
  EXPECT_FALSE(legal(combiner_back_add('\n'), "42"));
}

TEST(Domain, Fuse) {
  Combiner fa = combiner_fuse_add(' ');
  EXPECT_TRUE(legal(fa, "1 2 3"));
  EXPECT_FALSE(legal(fa, "123"));     // k must be >= 2
  EXPECT_FALSE(legal(fa, " 1 2"));    // first element empty
  EXPECT_FALSE(legal(fa, "1 2 "));    // last element empty
  EXPECT_FALSE(legal(fa, "1 x"));     // element outside L(add)
}

TEST(Domain, Stitch2RequiresPaddedTable) {
  Combiner saf = combiner_stitch2_add_first(' ');
  EXPECT_TRUE(legal(saf, "      2 apple\n      1 pear\n"));
  EXPECT_FALSE(legal(saf, "2 apple\n"));   // no padding
  EXPECT_FALSE(legal(saf, "      x apple\n"));  // head not numeric
  EXPECT_TRUE(legal(saf, "\n"));
}

TEST(Domain, OffsetAcceptsUnpaddedLines) {
  Combiner oa = combiner_offset_add(' ');
  EXPECT_TRUE(legal(oa, "3 file1\n10 file2\n"));
  EXPECT_TRUE(legal(oa, "3 a\n\n4 b\n"));  // nil lines allowed
  EXPECT_FALSE(legal(oa, "x file\n"));
}

TEST(Domain, MergeRequiresSortedInput) {
  Combiner m = combiner_merge("");
  EXPECT_TRUE(legal(m, "a\nb\n"));
  EXPECT_FALSE(legal(m, "b\na\n"));
  EXPECT_TRUE(legal(m, ""));
}

// ------------------------------------------------------------ semantics --

TEST(Eval, AddCanonicalizes) {
  EXPECT_EQ(ev(combiner_add(), "2", "3").value(), "5");
  EXPECT_EQ(ev(combiner_add(), "09", "1").value(), "10");
  EXPECT_FALSE(ev(combiner_add(), "x", "1").has_value());
}

TEST(Eval, ConcatFirstSecond) {
  EXPECT_EQ(ev(combiner_concat(), "ab", "cd").value(), "abcd");
  EXPECT_EQ(ev(combiner_first(), "ab", "cd").value(), "ab");
  EXPECT_EQ(ev(combiner_second(), "ab", "cd").value(), "cd");
}

TEST(Eval, SwappedArguments) {
  EXPECT_EQ(ev(swapped(combiner_concat()), "ab", "cd").value(), "cdab");
  EXPECT_EQ(ev(swapped(combiner_first()), "ab", "cd").value(), "cd");
}

TEST(Eval, FrontBack) {
  Combiner fc = combiner_front_concat(',');
  EXPECT_EQ(ev(fc, ",ab", ",cd").value(), ",abcd");
  EXPECT_FALSE(ev(fc, "ab", ",cd").has_value());

  Combiner ba = combiner_back_add('\n');
  EXPECT_EQ(ev(ba, "2\n", "40\n").value(), "42\n");
  EXPECT_FALSE(ev(ba, "2", "40\n").has_value());
}

TEST(Eval, WcCombinerShape) {
  // wc -l: (back '\n' add) combines the two counts.
  Combiner ba = combiner_back_add('\n');
  EXPECT_EQ(ev(ba, "3\n", "4\n").value(), "7\n");
}

TEST(Eval, FusePiecewise) {
  // wc (multi-column) shape: fuse applies add per column.
  Combiner fa = combiner_fuse_add(' ');
  EXPECT_EQ(ev(fa, "1 2 3", "10 20 30").value(), "11 22 33");
  EXPECT_FALSE(ev(fa, "1 2", "1 2 3").has_value());  // mismatched k
}

TEST(Eval, NestedBackFuse) {
  Combiner bfa{make_unary(Op::kBack, '\n',
                          make_unary(Op::kFuse, ' ', make_leaf(Op::kAdd))),
               false, nullptr, ""};
  EXPECT_EQ(ev(bfa, "1 2\n", "3 4\n").value(), "4 6\n");
}

TEST(Eval, StitchMergesEqualBoundaryLines) {
  // uniq: (stitch first).
  Combiner sf = combiner_stitch_first();
  EXPECT_EQ(ev(sf, "a\nb\n", "b\nc\n").value(), "a\nb\nc\n");
}

TEST(Eval, StitchConcatenatesDistinctBoundaryLines) {
  Combiner sf = combiner_stitch_first();
  EXPECT_EQ(ev(sf, "a\nb\n", "c\nd\n").value(), "a\nb\nc\nd\n");
}

TEST(Eval, StitchSingleLineOperands) {
  Combiner sf = combiner_stitch_first();
  EXPECT_EQ(ev(sf, "b\n", "b\n").value(), "b\n");
  EXPECT_EQ(ev(sf, "a\n", "b\n").value(), "a\nb\n");
}

TEST(Eval, StitchEmptyLineStream) {
  Combiner sf = combiner_stitch_first();
  EXPECT_EQ(ev(sf, "\n", "a\n").value(), "\na\n");
}

TEST(Eval, Stitch2CombinesCounts) {
  // uniq -c: (stitch2 ' ' add first). Boundary rows with the same word
  // merge, counts add, padding stays aligned to the left column.
  Combiner saf = combiner_stitch2_add_first(' ');
  EXPECT_EQ(
      ev(saf, "      2 apple\n      1 pear\n", "      3 pear\n      1 fig\n")
          .value(),
      "      2 apple\n      4 pear\n      1 fig\n");
}

TEST(Eval, Stitch2DistinctTailsConcatenate) {
  Combiner saf = combiner_stitch2_add_first(' ');
  EXPECT_EQ(ev(saf, "      1 a\n", "      1 b\n").value(),
            "      1 a\n      1 b\n");
}

TEST(Eval, Stitch2PaddingShrinksWithWiderCounts) {
  Combiner saf = combiner_stitch2_add_first(' ');
  EXPECT_EQ(ev(saf, "      9 x\n", "      9 x\n").value(), "     18 x\n");
}

TEST(Eval, OffsetAdjustsFirstFields) {
  // xargs -L1 wc -l shape with add: offset line counts.
  Combiner oa = combiner_offset_add(' ');
  EXPECT_EQ(ev(oa, "5 f1\n", "3 f2\n1 f3\n").value(), "5 f1\n8 f2\n6 f3\n");
}

TEST(Eval, OffsetSecondIsConcat) {
  Combiner os{make_unary(Op::kOffset, ' ', make_leaf(Op::kSecond)), false,
              nullptr, ""};
  EXPECT_EQ(ev(os, "5 f1\n", "3 f2\n").value(), "5 f1\n3 f2\n");
}

TEST(Eval, MergeInterleavesSorted) {
  Combiner m = combiner_merge("");
  EXPECT_EQ(ev(m, "a\nc\n", "b\nd\n").value(), "a\nb\nc\nd\n");
  EXPECT_FALSE(ev(m, "c\na\n", "b\n").has_value());
}

TEST(Eval, MergeNumericFlags) {
  Combiner m = combiner_merge("-n");
  EXPECT_EQ(ev(m, "2\n10\n", "3\n").value(), "2\n3\n10\n");
}

TEST(Eval, RerunInvokesCommand) {
  cmd::CommandPtr sort = cmd::make_command_line("sort");
  ASSERT_NE(sort, nullptr);
  EvalContext ctx{sort.get()};
  EXPECT_EQ(eval(combiner_rerun(), "b\n", "a\n", ctx).value(), "a\nb\n");
  EXPECT_FALSE(eval(combiner_rerun(), "b\n", "a\n", {}).has_value());
}

// ---------------------------------------------------------- enumeration --

TEST(Enumerate, PaperSpaceSizesExactly) {
  // Table 10: 2700 = 968 + 1728 + 4 (one delimiter), 26404 = 12440 +
  // 13960 + 4 (two), 110444 = 59048 + 51392 + 4 (three).
  SpaceCounts d1 = count_candidates(1, 5);
  EXPECT_EQ(d1.rec, 968u);
  EXPECT_EQ(d1.strct, 1728u);
  EXPECT_EQ(d1.run, 4u);
  EXPECT_EQ(d1.total(), 2700u);

  SpaceCounts d2 = count_candidates(2, 5);
  EXPECT_EQ(d2.rec, 12440u);
  EXPECT_EQ(d2.strct, 13960u);
  EXPECT_EQ(d2.total(), 26404u);

  SpaceCounts d3 = count_candidates(3, 5);
  EXPECT_EQ(d3.rec, 59048u);
  EXPECT_EQ(d3.strct, 51392u);
  EXPECT_EQ(d3.total(), 110444u);
}

TEST(Enumerate, GeneratorMatchesClosedForm) {
  for (std::size_t d = 1; d <= 3; ++d) {
    SpaceSpec spec;
    spec.delims.assign(kDelims, kDelims + d);
    CandidateSpace space = enumerate_candidates(spec);
    SpaceCounts counts = count_candidates(d, spec.max_ops);
    EXPECT_EQ(space.rec_count, counts.rec) << "D=" << d;
    EXPECT_EQ(space.struct_count, counts.strct) << "D=" << d;
    EXPECT_EQ(space.run_count, counts.run) << "D=" << d;
    EXPECT_EQ(space.candidates.size(), counts.total()) << "D=" << d;
  }
}

TEST(Enumerate, AllCandidatesWithinSizeBound) {
  SpaceSpec spec;
  spec.delims = {'\n', ' '};
  CandidateSpace space = enumerate_candidates(spec);
  for (const Combiner& g : space.candidates)
    EXPECT_LE(size(g), spec.max_ops + 2) << to_string(g);
}

TEST(Enumerate, CandidatesAreDistinct) {
  SpaceSpec spec;  // one delimiter: 2700 candidates
  CandidateSpace space = enumerate_candidates(spec);
  std::set<std::string> seen;
  for (const Combiner& g : space.candidates)
    EXPECT_TRUE(seen.insert(to_string(g)).second) << to_string(g);
}

// ---------------------------------------------------------------- k-way --

TEST(KWay, ConcatJoins) {
  EXPECT_EQ(combine_k(combiner_concat(), {"a\n", "b\n", "c\n"}).value(),
            "a\nb\nc\n");
}

TEST(KWay, MergeAllAtOnce) {
  EXPECT_EQ(combine_k(combiner_merge(""), {"a\nd\n", "b\n", "c\ne\n"}).value(),
            "a\nb\nc\nd\ne\n");
}

TEST(KWay, RerunConcatenatesOnceThenRuns) {
  cmd::CommandPtr sort = cmd::make_command_line("sort");
  EvalContext ctx{sort.get()};
  EXPECT_EQ(combine_k(combiner_rerun(), {"c\n", "a\n", "b\n"}, ctx).value(),
            "a\nb\nc\n");
}

TEST(KWay, PairwiseFoldForStructOps) {
  Combiner saf = combiner_stitch2_add_first(' ');
  EXPECT_EQ(combine_k(saf, {"      1 x\n", "      1 x\n", "      1 x\n"})
                .value(),
            "      3 x\n");
}

TEST(KWay, SingletonAndEmpty) {
  EXPECT_EQ(combine_k(combiner_concat(), {}).value(), "");
  EXPECT_EQ(combine_k(combiner_stitch_first(), {"a\n"}).value(), "a\n");
}

}  // namespace
}  // namespace kq::dsl
