// Tests for the Appendix B sufficiency predicates (Table 2, Definitions
// B.13-B.15) and the theorem-certification API.

#include <gtest/gtest.h>

#include "synth/sufficiency.h"
#include "synth/synthesize.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

namespace kq::synth {
namespace {

Observation obs(std::string y1, std::string y2, std::string y12 = "") {
  return Observation{std::move(y1), std::move(y2), std::move(y12)};
}

TEST(Significant, DelimAndZeroAreInsignificant) {
  EXPECT_TRUE(is_delim_or_zero('0'));
  EXPECT_TRUE(is_delim_or_zero('\n'));
  EXPECT_TRUE(is_delim_or_zero(' '));
  EXPECT_TRUE(is_delim_or_zero(','));
  EXPECT_FALSE(is_delim_or_zero('1'));
  EXPECT_FALSE(is_delim_or_zero('a'));
  EXPECT_FALSE(has_significant_char("0 0,\n"));
  EXPECT_TRUE(has_significant_char("0 x\n"));
}

TEST(ERec, RequiresDifferingAndSignificantOperands) {
  // Differ + both significant: sufficient.
  EXPECT_TRUE(e_rec({obs("a\n", "b\n")}));
  // Equal operands only: insufficient (first/second indistinguishable).
  EXPECT_FALSE(e_rec({obs("a\n", "a\n")}));
  // Differ, but y2 all-zero: insufficient (add vs first ambiguous).
  EXPECT_FALSE(e_rec({obs("a\n", "0\n")}));
  // Evidence may be split across observations.
  EXPECT_TRUE(e_rec({obs("a\n", "a\n"), obs("x\n", "y\n")}));
}

TEST(EAdd, ZeroCountsAreInsufficient) {
  // wc -l outputting 0 on every observation cannot pin down add.
  dsl::Combiner ba = dsl::combiner_back_add('\n');
  EXPECT_EQ(e_representative(ba, {obs("0\n", "0\n")}), false);
  EXPECT_EQ(e_representative(ba, {obs("3\n", "4\n")}), true);
  // Malformed (no trailing newline) fails the formatting layer.
  EXPECT_EQ(e_representative(ba, {obs("3", "4")}), false);
}

TEST(EConcat, NonemptyWitnessesRequired) {
  dsl::Combiner c = dsl::combiner_concat();
  EXPECT_EQ(e_representative(c, {obs("", "")}), false);
  EXPECT_EQ(e_representative(c, {obs("x\n", "")}), false);
  EXPECT_EQ(e_representative(c, {obs("x\n", ""), obs("", "y\n")}), true);
}

TEST(EFuse, PiecewiseEvidence) {
  dsl::Combiner fa = dsl::combiner_fuse_add(' ');
  EXPECT_EQ(e_representative(fa, {obs("1 2", "3 4")}), true);
  EXPECT_EQ(e_representative(fa, {obs("0 0", "0 0")}), false);
}

TEST(TPred, DetectsTables) {
  EXPECT_TRUE(t_pred({obs("      1 apple\n", "      2 pear\n")}));
  EXPECT_EQ(table_delimiter({obs("      1 apple\n", "      2 pear\n")}),
            ' ');
  // Lines without any delimiter are not table rows.
  EXPECT_FALSE(t_pred({obs("apple\n", "pear\n")}));
}

TEST(EStruct, NeedsBoundaryWitness) {
  // Definition B.15 clause (1) wants an observation whose boundary lines
  // are *fully equal* with significant characters and a further non-empty
  // line in y2; clause (2) additionally wants same-tail rows with
  // differing heads when the outputs are table-shaped.
  std::vector<Observation> good = {
      obs("      2 apple\n      1 pear\n", "      1 pear\n      1 fig\n"),
      obs("      2 pear\n", "      1 pear\n      3 kiwi\n")};
  EXPECT_TRUE(e_struct(good));
  // No fully-equal boundary line: insufficient.
  std::vector<Observation> no_boundary = {
      obs("      2 apple\n", "      3 fig\n      1 kiwi\n")};
  EXPECT_FALSE(e_struct(no_boundary));
  // Equal boundary but all heads equal on same-tail rows: clause (2)
  // fails for table-shaped outputs.
  std::vector<Observation> equal_heads = {
      obs("      1 pear\n", "      1 pear\n      1 fig\n")};
  EXPECT_FALSE(e_struct(equal_heads));
}

TEST(Certify, WcGetsRecCertificate) {
  auto argv = text::shell_split("wc -l");
  cmd::CommandPtr f = cmd::make_command(*argv);
  SynthesisResult r = synthesize(*f, *argv);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.sufficiency.verdict, "rec-certified");
}

TEST(Certify, TrGetsRecCertificate) {
  auto argv = text::shell_split("tr A-Z a-z");
  cmd::CommandPtr f = cmd::make_command(*argv);
  SynthesisResult r = synthesize(*f, *argv);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.sufficiency.verdict, "rec-certified");
}

TEST(Certify, UniqCountGetsStructCertificate) {
  auto argv = text::shell_split("uniq -c");
  cmd::CommandPtr f = cmd::make_command(*argv);
  SynthesisResult r = synthesize(*f, *argv);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.sufficiency.verdict, "struct-certified");
}

TEST(Certify, RerunOnlyIsUncertified) {
  // The theorems only cover RecOp/StructOp survivors; rerun-only results
  // (tr -cs) carry no certificate.
  auto argv = text::shell_split("tr -cs A-Za-z '\\n'");
  cmd::CommandPtr f = cmd::make_command(*argv);
  SynthesisResult r = synthesize(*f, *argv);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.sufficiency.verdict, "uncertified");
}

}  // namespace
}  // namespace kq::synth
