// Tests for the kq::Executor facade (exec/executor.h): every mode
// (serial / batch / stream) over every source shape (string / istream /
// fd) must produce byte-identical output, options must resolve the unified
// parallelism default, and the string-source stream path must carry
// run_streaming_string's combine-fallback semantics.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/executor.h"
#include "exec/runner.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

std::vector<exec::ExecStage> compile_stages(const std::string& pipeline) {
  auto parsed = compile::parse_pipeline(pipeline);
  EXPECT_TRUE(parsed.has_value()) << pipeline;
  static synth::SynthesisCache cache;
  compile::Plan plan = compile::compile_pipeline(*parsed, cache);
  compile::eliminate_intermediate_combiners(plan);
  return compile::lower_plan(plan);
}

std::string sample_input() {
  std::string input;
  for (int i = 0; i < 1500; ++i)
    input += "alpha Beta gamma-" + std::to_string(i % 97) + " delta\n";
  return input;
}

// A temp file holding `bytes`, rewound to the start; returns its fd.
int fd_with(const std::string& bytes, FILE** keepalive) {
  FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fwrite(bytes.data(), 1, bytes.size(), f);
  fflush(f);
  rewind(f);
  *keepalive = f;
  return fileno(f);
}

TEST(Executor, DefaultParallelismIsHardwareDerivedAndCapped) {
  int d = default_parallelism();
  EXPECT_GE(d, 1);
  EXPECT_LE(d, 16);
  Executor defaulted;
  EXPECT_EQ(defaulted.options().parallelism, d);
  ExecOptions explicit_k;
  explicit_k.parallelism = 3;
  Executor chosen(explicit_k);
  EXPECT_EQ(chosen.options().parallelism, 3);
}

TEST(Executor, AllModesAllSourcesByteIdentical) {
  auto stages = compile_stages("tr a-z A-Z | grep ALPHA | wc -l");
  const std::string input = sample_input();
  const std::string golden = exec::run_serial(stages, input).output;
  ASSERT_FALSE(golden.empty());

  for (ExecMode mode :
       {ExecMode::kSerial, ExecMode::kBatch, ExecMode::kStream}) {
    ExecOptions options;
    options.mode = mode;
    options.parallelism = 4;
    options.block_size = 2048;
    Executor executor(options);

    // String source, collected.
    kq::ExecResult from_string = executor.run_collect(stages, input);
    ASSERT_TRUE(from_string.ok) << exec_mode_name(mode) << ": "
                                << from_string.error;
    EXPECT_EQ(from_string.output, golden) << exec_mode_name(mode);

    // istream source through the sink overload.
    std::istringstream in(input);
    std::string sunk;
    kq::ExecResult from_stream = executor.run(
        stages, in, [&sunk](std::string_view bytes) {
          sunk.append(bytes);
          return true;
        });
    ASSERT_TRUE(from_stream.ok) << exec_mode_name(mode) << ": "
                                << from_stream.error;
    EXPECT_EQ(sunk, golden) << exec_mode_name(mode);

    // fd source through the ostream overload.
    FILE* keepalive = nullptr;
    int fd = fd_with(input, &keepalive);
    std::ostringstream out;
    kq::ExecResult from_fd =
        executor.run(stages, Source::from_fd(fd), out);
    ASSERT_TRUE(from_fd.ok) << exec_mode_name(mode) << ": " << from_fd.error;
    EXPECT_EQ(out.str(), golden) << exec_mode_name(mode);
    fclose(keepalive);
  }
}

TEST(Executor, StreamModeReportsStreamTelemetry) {
  auto stages = compile_stages("grep alpha");
  const std::string input = sample_input();
  ExecOptions options;
  options.parallelism = 2;
  options.block_size = 1024;
  Executor executor(options);
  kq::ExecResult r = executor.run_collect(stages, input);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.bytes_read, input.size());
  EXPECT_GT(r.peak_inflight_bytes, 0u);
  EXPECT_FALSE(r.nodes.empty());
}

TEST(Executor, BatchModeMapsStageMetricsIntoNodes) {
  auto stages = compile_stages("tr a-z A-Z | wc -l");
  ExecOptions options;
  options.mode = ExecMode::kBatch;
  options.parallelism = 2;
  Executor executor(options);
  kq::ExecResult r = executor.run_collect(stages, sample_input());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_EQ(r.nodes[0].commands, "tr a-z A-Z");
  EXPECT_TRUE(r.nodes[0].parallel);
  EXPECT_FALSE(r.nodes[0].combiner.empty());
  EXPECT_GT(r.nodes[0].in_bytes, 0u);
}

TEST(Executor, SinkFalseStopsEarly) {
  auto stages = compile_stages("grep alpha");
  ExecOptions options;
  options.parallelism = 2;
  options.block_size = 512;
  Executor executor(options);
  std::istringstream in(sample_input());
  int deliveries = 0;
  kq::ExecResult r = executor.run(stages, in, [&](std::string_view) {
    return ++deliveries < 2;  // close after the second delivery
  });
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.stopped_early);
}

TEST(Executor, StringSourceStreamFallsBackToBatchOnUndefinedCombine) {
  // A deliberately broken combiner: streaming must bail mid-fold, and the
  // string source (the only shape whose input is still at hand) must rerun
  // through the batch path exactly once — no duplicated prefix.
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("tr a-z A-Z");
  s.parallel = true;
  s.combiner_name = "(broken)";
  s.combine = [](const std::vector<std::string>&)
      -> std::optional<std::string> { return std::nullopt; };
  stages.push_back(std::move(s));

  ExecOptions options;
  options.parallelism = 2;
  options.block_size = 4;
  Executor executor(options);
  kq::ExecResult r = executor.run_collect(stages, "ab\ncd\nef\ngh\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.batch_fallback);
  EXPECT_EQ(r.output, "AB\nCD\nEF\nGH\n");
}

TEST(Executor, MatchesLegacyEntrypointsStageForStage) {
  // Facade-vs-wrapper parity: the deprecated free functions and the facade
  // must agree byte-for-byte while both exist.
  auto stages = compile_stages("tr A-Z a-z | sort | uniq -c");
  const std::string input = sample_input();

  exec::RunResult serial = exec::run_serial(stages, input);
  ExecOptions serial_options;
  serial_options.mode = ExecMode::kSerial;
  EXPECT_EQ(Executor(serial_options).run_collect(stages, input).output,
            serial.output);

  exec::ThreadPool pool(4);
  exec::RunResult batch =
      exec::run_pipeline(stages, input, pool, {4, /*use_elimination=*/true});
  ExecOptions batch_options;
  batch_options.mode = ExecMode::kBatch;
  batch_options.parallelism = 4;
  EXPECT_EQ(Executor(batch_options).run_collect(stages, input).output,
            batch.output);

  stream::StreamConfig config;
  config.parallelism = 4;
  config.block_size = 2048;
  std::string streamed;
  stream::StreamResult sr =
      stream::run_streaming_string(stages, input, &streamed, pool, config);
  ASSERT_TRUE(sr.ok) << sr.error;
  ExecOptions stream_opts;
  stream_opts.parallelism = 4;
  stream_opts.block_size = 2048;
  EXPECT_EQ(Executor(stream_opts).run_collect(stages, input).output,
            streamed);
}

}  // namespace
}  // namespace kq
