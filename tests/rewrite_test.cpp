// The pipeline-rewrite pass (compile::rewrite_bounded_windows, ISSUE 5):
// `sort <spec> | head -n N` fuses into a bounded top-n window stage and
// `uniq … | sort <spec> | head -n N` into a bounded top-k stage. Tests
// cover the plan shapes (what fuses, what must not, the rewritten-from
// annotation and kWindowStream lowering), byte-identity of rewritten plans
// against their unrewritten batch twins — through the batch runner, the
// streaming runtime at several block sizes, and the streaming runtime with
// the window forced through its sorted-run spill export — and the full
// 70-script catalog cross-validated with the rewrite pass on.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "bench_support/catalog.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "exec/runner.h"
#include "exec/thread_pool.h"
#include "stream/dataflow.h"
#include "unixcmd/registry.h"

namespace kq {
namespace {

synth::SynthesisCache& cache() {
  static synth::SynthesisCache c;
  return c;
}

compile::Plan plan_for(const std::string& pipeline, bool rewrite) {
  auto parsed = compile::parse_pipeline(pipeline);
  EXPECT_TRUE(parsed.has_value()) << pipeline;
  compile::Plan plan = compile::compile_pipeline(*parsed, cache());
  if (rewrite) compile::rewrite_bounded_windows(plan);
  compile::eliminate_intermediate_combiners(plan);
  return plan;
}

// ------------------------------------------------------------ plan shapes --

TEST(RewritePass, SortHeadFusesToTopN) {
  compile::Plan plan = plan_for("sort | head -n 10", /*rewrite=*/true);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].rewritten_from, "sort | head -n 10");
  EXPECT_FALSE(plan.stages[0].parallel);
  auto stages = compile::lower_plan(plan);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].memory_class, exec::MemoryClass::kWindowStream);
  // The fused stage carries the sort comparator so a pathological-N window
  // can export sorted runs through the external merge.
  EXPECT_NE(stages[0].sort_spec, nullptr);
  EXPECT_EQ(stages[0].command->streamability(), cmd::Streamability::kWindow);
  EXPECT_NE(stages[0].command->window_processor(), nullptr);
}

TEST(RewritePass, UniqSortHeadFusesToTopK) {
  compile::Plan plan =
      plan_for("uniq -c | sort -rn | head -n 5", /*rewrite=*/true);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].rewritten_from,
            "uniq -c | sort -rn | head -n 5");
  auto stages = compile::lower_plan(plan);
  EXPECT_EQ(stages[0].memory_class, exec::MemoryClass::kWindowStream);
  EXPECT_NE(stages[0].sort_spec, nullptr);
}

TEST(RewritePass, FusedStageEmbedsInLargerPipelines) {
  compile::Plan plan =
      plan_for("grep a | sort | head -n 3 | wc -l", /*rewrite=*/true);
  ASSERT_EQ(plan.stages.size(), 3u);
  EXPECT_TRUE(plan.stages[0].rewritten_from.empty());
  EXPECT_EQ(plan.stages[1].rewritten_from, "sort | head -n 3");
  EXPECT_TRUE(plan.stages[2].rewritten_from.empty());
}

TEST(RewritePass, RewritesEveryOccurrence) {
  compile::Plan plan = plan_for("sort | head -n 20 | sort -rn | head -n 5",
                                /*rewrite=*/true);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_EQ(plan.stages[0].rewritten_from, "sort | head -n 20");
  EXPECT_EQ(plan.stages[1].rewritten_from, "sort -rn | head -n 5");
}

TEST(RewritePass, DefaultHeadCountAndUniqueSortsFuse) {
  EXPECT_EQ(plan_for("sort | head", true).stages.size(), 1u);
  EXPECT_EQ(plan_for("sort -u | head -n 4", true).stages.size(), 1u);
  EXPECT_EQ(plan_for("sort -k1,1 | head -2", true).stages.size(), 1u);
  EXPECT_EQ(plan_for("uniq | sort | head -n 3", true).stages.size(), 1u);
}

TEST(RewritePass, NonMatchesStayUntouched) {
  // Byte-mode head cuts mid-record: no sorted window reproduces it.
  EXPECT_EQ(plan_for("sort | head -c 10", true).stages.size(), 2u);
  // tail is not a prefix of the sorted stream.
  EXPECT_EQ(plan_for("sort | tail -n 5", true).stages.size(), 2u);
  // Order matters.
  EXPECT_EQ(plan_for("head -n 5 | sort", true).stages.size(), 2u);
  // No bounding head: uniq/sort keep their own lowering.
  EXPECT_EQ(plan_for("uniq -c | sort -rn", true).stages.size(), 2u);
  // An intervening stage breaks adjacency.
  EXPECT_EQ(plan_for("sort | grep a | head -n 5", true).stages.size(), 3u);
}

TEST(RewritePass, EscapeHatchKeepsOriginalPlan) {
  compile::Plan plan = plan_for("sort | head -n 10", /*rewrite=*/false);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_TRUE(plan.stages[0].rewritten_from.empty());
  EXPECT_TRUE(plan.stages[1].rewritten_from.empty());
}

// --------------------------------------------------------- byte identity --

std::string random_lines(std::uint64_t seed, int n, int distinct,
                         bool terminated) {
  std::mt19937_64 rng(seed);
  std::string out;
  for (int i = 0; i < n; ++i) {
    int v = static_cast<int>(rng() % distinct);
    switch (rng() % 3) {
      case 0: out += "w-" + std::to_string(v); break;
      case 1: out += std::to_string(v); break;
      default: out += std::to_string(v) + " x" + std::to_string(rng() % 7);
    }
    out.push_back('\n');
  }
  if (!terminated && !out.empty()) out.pop_back();
  return out;
}

// Runs `pipeline` rewritten — batch, serial, and streamed at several
// block/spill configurations — and expects every output byte-identical to
// the unrewritten batch plan.
void expect_rewrite_identity(const std::string& pipeline,
                             const std::string& input) {
  compile::Plan baseline = plan_for(pipeline, /*rewrite=*/false);
  auto baseline_stages = compile::lower_plan(baseline);
  exec::ThreadPool pool(4);
  std::string expected =
      exec::run_pipeline(baseline_stages, input, pool, {4, true}).output;

  compile::Plan rewritten = plan_for(pipeline, /*rewrite=*/true);
  EXPECT_LT(rewritten.stages.size(), baseline.stages.size()) << pipeline;
  auto stages = compile::lower_plan(rewritten);

  EXPECT_EQ(exec::run_pipeline(stages, input, pool, {4, true}).output,
            expected)
      << pipeline << " (batch, rewritten)";
  EXPECT_EQ(exec::run_serial(stages, input).output, expected)
      << pipeline << " (serial, rewritten)";

  struct Cfg {
    std::size_t block, spill;
  };
  for (Cfg cfg : {Cfg{64, 64 << 20}, Cfg{1 << 20, 64 << 20},
                  Cfg{512, 1 << 10}}) {
    stream::StreamConfig config;
    config.parallelism = 4;
    config.block_size = cfg.block;
    config.spill_threshold = cfg.spill;
    std::string streamed;
    stream::StreamResult r =
        stream::run_streaming_string(stages, input, &streamed, pool, config);
    ASSERT_TRUE(r.ok) << pipeline << ": " << r.error;
    EXPECT_FALSE(r.batch_fallback) << pipeline;
    EXPECT_EQ(streamed, expected)
        << pipeline << " (stream, block=" << cfg.block
        << ", spill=" << cfg.spill << ")";
  }
}

TEST(RewriteIdentity, TopNFamilies) {
  for (const char* pipeline :
       {"sort | head -n 10", "sort | head -n 1", "sort | head -n 0",
        "sort | head", "sort -rn | head -n 7", "sort -n | head -n 13",
        "sort -u | head -n 9", "sort -nu | head -n 6",
        "sort -k1,1 | head -n 5", "sort -f | head -n 8",
        "sort -r | head -n 4"}) {
    expect_rewrite_identity(pipeline, random_lines(7, 400, 37, true));
    expect_rewrite_identity(pipeline, random_lines(8, 400, 37, false));
    expect_rewrite_identity(pipeline, "");
  }
}

TEST(RewriteIdentity, TopKCountFamilies) {
  for (const char* pipeline :
       {"uniq -c | sort -rn | head -n 5", "uniq -c | sort -n | head -n 5",
        "uniq -c | sort -rn | head -n 1", "uniq -c | sort | head -n 6",
        "uniq | sort | head -n 4", "uniq -c | sort -rn | head -n 0",
        "uniq -d | sort | head -n 3"}) {
    // Unsorted input: uniq's run semantics (one line per *run*, not per
    // distinct value) must survive the fusion.
    expect_rewrite_identity(pipeline, random_lines(9, 400, 11, true));
    expect_rewrite_identity(pipeline, random_lines(10, 400, 11, false));
    expect_rewrite_identity(pipeline, "");
  }
}

TEST(RewriteIdentity, EmbeddedAndChainedForms) {
  std::string input = random_lines(11, 500, 29, true);
  expect_rewrite_identity("grep 1 | sort | head -n 6", input);
  expect_rewrite_identity("sort | head -n 8 | wc -l", input);
  expect_rewrite_identity("tr a-z A-Z | uniq -c | sort -rn | head -n 4",
                          input);
  expect_rewrite_identity("sort | head -n 3 | sort -rn | head -n 2", input);
}

// A top-n wider than the spill threshold exports sorted runs and re-streams
// the capped external merge: spill metrics appear on the window node and
// the output still matches the unrewritten batch plan.
TEST(RewriteSpill, PathologicalNExportsRunsAndCapsOutput) {
  std::string input = random_lines(13, 6000, 100000, true);
  compile::Plan baseline = plan_for("sort -n | head -n 2000", false);
  compile::Plan rewritten = plan_for("sort -n | head -n 2000", true);
  ASSERT_EQ(rewritten.stages.size(), 1u);
  auto baseline_stages = compile::lower_plan(baseline);
  auto stages = compile::lower_plan(rewritten);

  exec::ThreadPool pool(2);
  std::string expected =
      exec::run_pipeline(baseline_stages, input, pool, {2, true}).output;

  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 512;
  config.spill_threshold = 2048;  // far below the ~2000-line window
  std::string streamed;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &streamed, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(streamed, expected);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_TRUE(r.nodes[0].window);
  EXPECT_GT(r.nodes[0].spilled_bytes, 0u);
  EXPECT_GT(r.nodes[0].spill_runs, 1);
}

// The fused top-k under spill must not lose uniq's pending final run: the
// runtime seals the residue into the top-k window before the final sorted
// run exports (WindowProcessor::seal).
TEST(RewriteSpill, TopKSealsPendingUniqRun) {
  std::string input;
  // Appends, not chained operator+: GCC PR 105329 (-Wrestrict).
  for (int i = 0; i < 3000; ++i) {
    input += "v";
    input += std::to_string(i % 1500);
    input += "\n";
  }
  compile::Plan baseline = plan_for("uniq -c | sort -rn | head -n 1200",
                                    false);
  compile::Plan rewritten = plan_for("uniq -c | sort -rn | head -n 1200",
                                     true);
  auto stages = compile::lower_plan(rewritten);

  exec::ThreadPool pool(2);
  std::string expected =
      exec::run_pipeline(compile::lower_plan(baseline), input, pool,
                         {2, true})
          .output;

  stream::StreamConfig config;
  config.parallelism = 2;
  config.block_size = 256;
  config.spill_threshold = 1024;
  std::string streamed;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &streamed, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(streamed, expected);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_GT(r.nodes[0].spilled_bytes, 0u);
}

// A sequential streamable prefix fuses in front of the window terminal:
// `grep 1 | top-n` must run as ONE node.
TEST(RewriteFusion, StreamChainTerminatesInFusedTopN) {
  compile::Plan plan = plan_for("grep 1 | sort | head -n 5", true);
  for (auto& stage : plan.stages) stage.parallel = false;
  auto stages = compile::lower_plan(plan);
  std::string input = random_lines(17, 300, 23, true);

  exec::ThreadPool pool(2);
  stream::StreamConfig config;
  config.parallelism = 1;
  config.block_size = 128;
  std::string out;
  stream::StreamResult r =
      stream::run_streaming_string(stages, input, &out, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_TRUE(r.nodes[0].window);
  EXPECT_EQ(out, exec::run_serial(stages, input).output);
}

// ------------------------------------------------ catalog cross-validation --

// The rewrite pass applied across the whole 70-script catalog: rewritten
// plans (streamed) must stay byte-identical to the unrewritten batch
// plans. Most scripts contain no rewrite target — the pass must leave them
// bit-exact too — and the ones that do exercise the fused nodes end to
// end.
class RewriteCatalogCrossval
    : public ::testing::TestWithParam<const bench::Script*> {
 protected:
  static vfs::Vfs& fs() {
    static vfs::Vfs v;
    return v;
  }
};

TEST_P(RewriteCatalogCrossval, RewrittenStreamMatchesUnrewrittenBatch) {
  const bench::Script& script = *GetParam();
  std::string input = bench::prepare_input(script, 24 * 1024, 11, fs());
  exec::ThreadPool pool(4);

  for (const std::string& pipeline : script.pipelines) {
    auto parsed = compile::parse_pipeline(pipeline);
    ASSERT_TRUE(parsed.has_value()) << pipeline;
    compile::Plan baseline =
        compile::compile_pipeline(*parsed, cache(), {}, &fs());
    compile::eliminate_intermediate_combiners(baseline);
    std::string expected =
        exec::run_pipeline(compile::lower_plan(baseline), input, pool,
                           {4, true})
            .output;

    compile::Plan rewritten =
        compile::compile_pipeline(*parsed, cache(), {}, &fs());
    int fused = compile::rewrite_bounded_windows(rewritten);
    compile::eliminate_intermediate_combiners(rewritten);
    auto stages = compile::lower_plan(rewritten);

    stream::StreamConfig config;
    config.parallelism = 4;
    config.block_size = 2048;
    config.spill_threshold = 4096;
    std::string streamed;
    stream::StreamResult r = stream::run_streaming_string(
        stages, input, &streamed, pool, config);
    EXPECT_TRUE(r.ok) << pipeline << ": " << r.error;
    EXPECT_EQ(streamed, expected)
        << script.suite << "/" << script.name << (fused ? " (rewritten)" : "")
        << ": " << pipeline;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, RewriteCatalogCrossval,
    ::testing::ValuesIn([] {
      std::vector<const bench::Script*> ptrs;
      for (const bench::Script& s : bench::all_scripts()) ptrs.push_back(&s);
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const bench::Script*>& info) {
      std::string name = info.param->suite + "_" + info.param->name;
      std::string out;
      for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

}  // namespace
}  // namespace kq
