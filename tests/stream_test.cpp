// Tests for the streaming dataflow runtime: record-aligned block reading
// (boundary realignment, CRLF, oversized records, missing trailing
// newline), bounded channels with backpressure, the dataflow executor's
// equivalence with the batch runner, and cross-validation of `--stream`
// against `--batch` on every catalog pipeline.

#include <gtest/gtest.h>

#include <pthread.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <functional>
#include <sstream>
#include <streambuf>
#include <thread>

#include "bench_support/catalog.h"
#include "compile/optimize.h"
#include "compile/plan.h"
#include "dsl/kway.h"
#include "exec/runner.h"
#include "stream/block_reader.h"
#include "stream/channel.h"
#include "stream/dataflow.h"
#include "unixcmd/registry.h"
#include "unixcmd/sort_cmd.h"

namespace kq::stream {
namespace {

std::vector<std::string> read_all(BlockReader& reader) {
  std::vector<std::string> blocks;
  while (auto b = reader.next()) blocks.push_back(std::move(*b));
  return blocks;
}

std::string joined(const std::vector<std::string>& blocks) {
  std::string out;
  for (const std::string& b : blocks) out += b;
  return out;
}

// --------------------------------------------------------- block reader --

TEST(BlockReader, DelimiterStraddlingBlockBoundary) {
  // Lines of 7 bytes with block_size 8: every naive 8-byte cut would land
  // mid-record, so each block must be realigned to the previous newline.
  std::string input;
  for (int i = 0; i < 40; ++i) input += "abcdef\n";
  std::istringstream in(input);
  BlockReader reader(in, {8, '\n'});
  auto blocks = read_all(reader);
  EXPECT_EQ(joined(blocks), input);
  EXPECT_GT(blocks.size(), 1u);
  for (const std::string& b : blocks) {
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(b.back(), '\n');
    EXPECT_EQ(b.size() % 7, 0u) << "block split a record";
  }
}

TEST(BlockReader, RecordLongerThanBlock) {
  std::string long_line(1000, 'x');
  std::string input = "short\n" + long_line + "\nshort\n";
  std::istringstream in(input);
  BlockReader reader(in, {16, '\n'});
  auto blocks = read_all(reader);
  EXPECT_EQ(joined(blocks), input);
  bool saw_long = false;
  for (const std::string& b : blocks) {
    EXPECT_EQ(b.back(), '\n');
    if (b.find(long_line) != std::string::npos) saw_long = true;
  }
  EXPECT_TRUE(saw_long) << "oversized record must travel whole";
}

TEST(BlockReader, CrlfInput) {
  std::string input = "alpha\r\nbeta\r\ngamma\r\n";
  std::istringstream in(input);
  BlockReader reader(in, {7, '\n'});
  auto blocks = read_all(reader);
  EXPECT_EQ(joined(blocks), input);
  for (const std::string& b : blocks) {
    EXPECT_EQ(b.back(), '\n');  // CR stays inside its record
  }
}

TEST(BlockReader, EmptyInput) {
  std::istringstream in("");
  BlockReader reader(in, {1024, '\n'});
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_EQ(reader.next(), std::nullopt);  // stays exhausted
  EXPECT_EQ(reader.bytes_delivered(), 0u);
}

TEST(BlockReader, NoTrailingNewline) {
  std::string input = "one\ntwo\nthree";  // final record unterminated
  std::istringstream in(input);
  BlockReader reader(in, {4, '\n'});
  auto blocks = read_all(reader);
  EXPECT_EQ(joined(blocks), input);
  EXPECT_EQ(blocks.back().back(), 'e');
  for (std::size_t i = 0; i + 1 < blocks.size(); ++i)
    EXPECT_EQ(blocks[i].back(), '\n');
}

TEST(BlockReader, SingleBlockWhenInputFits) {
  std::string input = "a\nb\nc\n";
  std::istringstream in(input);
  BlockReader reader(in, {1 << 20, '\n'});
  auto blocks = read_all(reader);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], input);
  EXPECT_EQ(reader.bytes_delivered(), input.size());
}

TEST(BlockReader, CustomDelimiter) {
  std::string input = "a,b,c,d,";
  std::istringstream in(input);
  BlockReader reader(in, {3, ','});
  auto blocks = read_all(reader);
  EXPECT_EQ(joined(blocks), input);
  for (const std::string& b : blocks) EXPECT_EQ(b.back(), ',');
}

TEST(BlockReader, ReadFnSource) {
  // A source that trickles one byte at a time still yields aligned blocks.
  std::string input = "aa\nbb\ncc\n";
  std::size_t pos = 0;
  BlockReader reader(
      [&](char* buf, std::size_t n) -> std::size_t {
        if (pos >= input.size() || n == 0) return 0;
        buf[0] = input[pos++];
        return 1;
      },
      {4, '\n'});
  auto blocks = read_all(reader);
  EXPECT_EQ(joined(blocks), input);
}

TEST(BlockReader, ShortReadFlushesPendingRecords) {
  // A pipe between bursts must not hold delivered records hostage to a
  // full block: 6 bytes of complete records against a 1 MiB block size are
  // delivered on the first short read instead of blocking for more input.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "a\nb\nc", 5), 5);  // partial final record
  BlockReader reader(fds[0], {1 << 20, '\n'});
  auto block = reader.next();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, "a\nb\n");  // complete records only; "c" stays pending
  ::close(fds[1]);              // EOF releases the partial tail
  block = reader.next();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, "c");
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_EQ(reader.error(), 0);
  ::close(fds[0]);
}

TEST(BlockReader, PendingRecordsFlushBeforeBlockingOnIdlePipe) {
  // A burst that overshoots the block boundary leaves complete records in
  // pending_ after the first delivery. With the pipe now idle (write end
  // open, no data), subsequent next() calls must deliver those records
  // instead of blocking in another read — the idle check runs before
  // fill(). Before the fix this hung until the producer wrote or closed.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "aaaa\nbbbb\ncccc\n", 15), 15);
  BlockReader reader(fds[0], {8, '\n'});  // burst spans several blocks
  std::string collected;
  for (int i = 0; i < 3 && collected.size() < 15; ++i) {
    auto block = reader.next();
    ASSERT_TRUE(block.has_value()) << "block " << i;
    collected += *block;
  }
  EXPECT_EQ(collected, "aaaa\nbbbb\ncccc\n");  // all without EOF or hang
  ::close(fds[1]);
  ::close(fds[0]);
}

// An endless istream source: serves a repeating record block forever and
// fires a callback once a threshold of bytes has been served — the shape
// of a process substitution or decompressor that never reaches EOF.
class EndlessStreambuf : public std::streambuf {
 public:
  EndlessStreambuf(std::function<void()> on_threshold, std::size_t threshold)
      : on_threshold_(std::move(on_threshold)), threshold_(threshold) {
    for (int i = 0; i < 47; ++i) chunk_ += "0123456789\n";
  }
  std::size_t served() const { return served_; }

 protected:
  int_type underflow() override {
    if (!fired_ && served_ >= threshold_) {
      fired_ = true;
      on_threshold_();
    }
    served_ += chunk_.size();
    setg(chunk_.data(), chunk_.data(), chunk_.data() + chunk_.size());
    return traits_type::to_int_type(chunk_[0]);
  }

 private:
  std::string chunk_;
  std::function<void()> on_threshold_;
  std::size_t threshold_;
  std::size_t served_ = 0;
  bool fired_ = false;
};

TEST(BlockReader, CancelMidFillStopsIstreamSource) {
  // cancel() must take effect *during* a fill, not only between blocks:
  // with a 1 MiB block and an endless istream, a source that only checks
  // the flag per block would keep pulling the full megabyte after the
  // cancel lands. The istream source reads in bounded slices and rechecks
  // between them, so the bytes served stay within a few slices of the
  // cancellation point. Regression test for the istream half of the
  // poll-driven fd cancel fix.
  BlockReader* reader_ptr = nullptr;
  EndlessStreambuf buf([&reader_ptr] { reader_ptr->cancel(); },
                       /*threshold=*/1000);
  std::istream in(&buf);
  BlockReader reader(in, {1 << 20, '\n'});
  reader_ptr = &reader;
  std::size_t delivered = 0;
  while (auto block = reader.next()) delivered += block->size();
  EXPECT_EQ(reader.error(), 0);  // cancellation is not a read failure
  EXPECT_LT(buf.served(), std::size_t(64) * 1024)
      << "fill kept draining the source after cancel";
  EXPECT_LE(delivered, buf.served());
}

TEST(BlockReader, CancelWakesReadBlockedOnIdlePipe) {
  // cancel() must wake a reader blocked in read(2) on a pipe nobody is
  // writing to — the fd source polls with a timeout — and end the stream
  // as a clean EOF, not an error. Before the poll-based source, this
  // blocked until the writer produced a block or closed.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  BlockReader reader(fds[0], {1 << 20, '\n'});
  std::thread canceller([&reader] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    reader.cancel();
  });
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(reader.next(), std::nullopt);
  double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  canceller.join();
  EXPECT_EQ(reader.error(), 0);  // cancellation is not a read failure
  EXPECT_LT(waited, 5.0);        // one ~50 ms poll tick, with CI slack
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(BlockReader, SignalsMidReadDoNotTruncateOrFail) {
  // A signal delivered to a thread blocked in the fd source's poll(2) or
  // read(2) makes the syscall fail with EINTR when the handler is
  // installed without SA_RESTART. The source must retry — before the fix,
  // an EINTR on the *idle probe* poll misread the interruption as "pipe
  // gone idle" and shrank blocks; an unhandled errno on the data path
  // would have flagged a hard error and truncated the stream. Here a
  // writer dribbles records through a pipe while pelting the reading
  // thread with SIGUSR1; the reader must deliver every byte with
  // error() == 0.
  struct sigaction sa{};
  struct sigaction old_sa{};
  sa.sa_handler = [](int) {};  // no-op, and crucially no SA_RESTART
  sigemptyset(&sa.sa_mask);
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old_sa), 0);

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string expect;
  for (int i = 0; i < 400; ++i) {
    expect += "record-";
    expect += std::to_string(i);
    expect += '\n';
  }

  std::string got;
  int reader_error = -1;
  std::thread reader_thread([&] {
    BlockReader reader(fds[0], {256, '\n'});
    while (auto block = reader.next()) got += *block;
    reader_error = reader.error();
  });
  pthread_t reader_handle = reader_thread.native_handle();

  std::atomic<bool> stop_signals{false};
  std::thread signaller([&] {
    // Keep signalling until the writer is done; each hit interrupts
    // whatever syscall the reader is in. (Stopped and joined before the
    // reader thread is joined — pthread_kill needs a live handle.)
    while (!stop_signals.load()) {
      ::pthread_kill(reader_handle, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  // Dribble the input so the reader spends time blocked in poll/read with
  // a partially filled block — the window the signals aim for.
  std::size_t off = 0;
  while (off < expect.size()) {
    std::size_t n = std::min<std::size_t>(96, expect.size() - off);
    ssize_t wrote = ::write(fds[1], expect.data() + off, n);
    ASSERT_GT(wrote, 0);
    off += static_cast<std::size_t>(wrote);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  ::close(fds[1]);

  stop_signals.store(true);
  signaller.join();
  reader_thread.join();
  ::close(fds[0]);
  ASSERT_EQ(::sigaction(SIGUSR1, &old_sa, nullptr), 0);

  EXPECT_EQ(reader_error, 0) << "EINTR surfaced as a stream error";
  EXPECT_EQ(got, expect) << "signal storm truncated or corrupted the stream";
}

// -------------------------------------------------------------- channel --

TEST(Channel, DeliversInOrder) {
  Channel ch(4);
  for (std::size_t i = 0; i < 3; ++i) {
    // Append form: GCC PR 105329 (-Wrestrict).
    std::string payload = "c";
    payload += std::to_string(i);
    EXPECT_TRUE(ch.push({i, std::move(payload)}));
  }
  ch.close();
  for (std::size_t i = 0; i < 3; ++i) {
    auto c = ch.pop();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->index, i);
  }
  EXPECT_EQ(ch.pop(), std::nullopt);
}

TEST(Channel, PushAfterCloseFails) {
  Channel ch(2);
  ch.close();
  EXPECT_FALSE(ch.push({0, "x"}));
}

TEST(Channel, BackpressureBlocksProducerUntilConsumed) {
  Channel ch(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (std::size_t i = 0; i < 6; ++i) {
      ch.push({i, "data"});
      ++pushed;
    }
    ch.close();
  });
  // Give the producer time to hit the bound.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(pushed.load(), 2);
  int received = 0;
  while (ch.pop()) ++received;
  producer.join();
  EXPECT_EQ(received, 6);
  EXPECT_EQ(pushed.load(), 6);
}

TEST(Channel, AbortWakesAndDiscards) {
  Channel ch(1);
  ASSERT_TRUE(ch.push({0, "pending"}));
  std::thread producer([&] {
    // Blocks on the full channel until abort, then fails.
    EXPECT_FALSE(ch.push({1, "late"}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.abort();
  producer.join();
  EXPECT_EQ(ch.pop(), std::nullopt);  // pending chunk was discarded
}

TEST(Channel, GaugeTracksPeakBytes) {
  MemoryGauge gauge;
  Channel ch(8, &gauge);
  ch.push({0, std::string(100, 'x')});
  ch.push({1, std::string(50, 'y')});
  EXPECT_EQ(gauge.current(), 150u);
  ch.pop();
  EXPECT_EQ(gauge.current(), 50u);
  EXPECT_EQ(gauge.peak(), 150u);
}

TEST(Semaphore, CancelUnblocksWaiter) {
  Semaphore sem(1);
  ASSERT_TRUE(sem.acquire());
  std::thread waiter([&] { EXPECT_FALSE(sem.acquire()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sem.cancel();
  waiter.join();
}

TEST(Channel, CloseReadFailsProducerAndDiscardsPending) {
  MemoryGauge gauge;
  Channel ch(2, &gauge);
  ASSERT_TRUE(ch.push({0, "pending"}));
  EXPECT_FALSE(ch.read_closed());
  ch.close_read();
  EXPECT_TRUE(ch.read_closed());
  EXPECT_FALSE(ch.push({1, "late"}));   // producer learns downstream is done
  EXPECT_EQ(ch.pop(), std::nullopt);    // pending chunk was discarded
  EXPECT_EQ(gauge.current(), 0u);       // and its bytes released
}

TEST(Channel, CloseReadWakesBlockedProducer) {
  Channel ch(1);
  ASSERT_TRUE(ch.push({0, "fill"}));
  std::thread producer([&] { EXPECT_FALSE(ch.push({1, "blocked"})); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close_read();
  producer.join();
}

TEST(BufferPool, RecyclesAllocations) {
  BufferPool pool(/*budget_bytes=*/1024);
  std::string a = pool.acquire();
  a = "some contents that force an allocation";
  const char* data = a.data();
  pool.release(std::move(a));
  std::string b = pool.acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), data);  // same allocation came back
  EXPECT_TRUE(pool.acquire().empty());  // pool drained: fresh string
}

TEST(BufferPool, ByteBudgetBoundsRetainedCapacity) {
  // The pool bounds retained *bytes*, not buffer count: a release-heavy
  // node (a window absorbing input blocks, emitting nothing) must not park
  // unbounded dead capacity.
  BufferPool pool(/*budget_bytes=*/100);
  std::string big(200, 'x');
  pool.release(std::move(big));       // over budget: deallocated
  EXPECT_TRUE(pool.acquire().empty());
  std::string small(60, 'x');
  const char* data = small.data();
  pool.release(std::move(small));     // fits: retained
  std::string second(60, 'y');
  pool.release(std::move(second));    // 60 + 60 > 100: dropped
  std::string back = pool.acquire();
  EXPECT_EQ(back.data(), data);
  EXPECT_TRUE(pool.acquire().empty());
}

// ------------------------------------------------------------- dataflow --

// The exec_test word-count stages: tr A-Z a-z | sort | uniq -c with
// hand-built combiners, the §2 running example.
std::vector<exec::ExecStage> word_count_stages() {
  std::vector<exec::ExecStage> stages;
  {
    exec::ExecStage s;
    s.command = cmd::make_command_line("tr A-Z a-z");
    s.parallel = true;
    s.eliminate_combiner = true;
    s.concat_combiner = true;
    s.combiner_name = "(concat a b)";
    s.combine = [](const std::vector<std::string>& parts)
        -> std::optional<std::string> {
      std::string out;
      for (const auto& p : parts) out += p;
      return out;
    };
    stages.push_back(std::move(s));
  }
  {
    exec::ExecStage s;
    s.command = cmd::make_command_line("sort");
    s.parallel = true;
    s.combiner_name = "(merge a b)";
    s.combine = [](const std::vector<std::string>& parts)
        -> std::optional<std::string> {
      auto spec = cmd::SortSpec::parse({});
      std::vector<std::string_view> views(parts.begin(), parts.end());
      return spec->merge_streams(views);
    };
    stages.push_back(std::move(s));
  }
  {
    exec::ExecStage s;
    s.command = cmd::make_command_line("uniq -c");
    s.parallel = true;
    s.combiner_name = "((stitch2 ' ' add first) a b)";
    dsl::Combiner saf = dsl::combiner_stitch2_add_first(' ');
    s.combine = [saf](const std::vector<std::string>& parts) {
      return dsl::combine_k(saf, parts);
    };
    stages.push_back(std::move(s));
  }
  return stages;
}

std::string sample_words(int reps = 50) {
  std::string input;
  const char* words[] = {"apple", "Pear", "fig", "apple", "FIG", "plum"};
  for (int rep = 0; rep < reps; ++rep)
    for (const char* w : words) input += std::string(w) + "\n";
  return input;
}

TEST(Dataflow, MatchesBatchAcrossBlockSizes) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  exec::ThreadPool pool(4);
  std::string expect = exec::run_serial(stages, input).output;
  for (std::size_t block : {std::size_t(1), std::size_t(7), std::size_t(64),
                            std::size_t(1 << 20)}) {
    StreamConfig config;
    config.parallelism = 4;
    config.block_size = block;
    std::string output;
    StreamResult r =
        run_streaming_string(stages, input, &output, pool, config);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.batch_fallback) << "block=" << block;
    EXPECT_EQ(output, expect) << "block=" << block;
  }
}

TEST(Dataflow, FusesEliminatedChainIntoOneNode) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 64;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  // tr fuses into sort's segment (eliminated combiner); uniq -c is its own.
  ASSERT_EQ(r.nodes.size(), 2u);
  EXPECT_EQ(r.nodes[0].commands, "tr A-Z a-z | sort");
  EXPECT_EQ(r.nodes[1].commands, "uniq -c");
  EXPECT_TRUE(r.nodes[0].parallel);
  EXPECT_GT(r.nodes[0].chunks, 1);
}

TEST(Dataflow, UnoptimizedKeepsStagesSeparate) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 64;
  config.use_elimination = false;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.nodes.size(), 3u);
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
}

TEST(Dataflow, SequentialStageMidPipeline) {
  auto stages = word_count_stages();
  stages[1].parallel = false;  // force sort to drain sequentially
  std::string input = sample_words();
  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 32;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  bool saw_sequential = false;
  for (const auto& node : r.nodes)
    if (!node.parallel) saw_sequential = true;
  EXPECT_TRUE(saw_sequential);
}

TEST(Dataflow, EmptyInputMatchesBatch) {
  // wc -l on empty input must still produce "0\n": the chain runs once on
  // the empty stream, mirroring the batch splitter's single empty chunk.
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("wc -l");
  s.parallel = true;
  s.combiner_name = "(add a b)";
  dsl::Combiner add = dsl::combiner_add();
  s.combine = [add](const std::vector<std::string>& parts) {
    return dsl::combine_k(add, parts);
  };
  stages.push_back(std::move(s));

  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  std::string output;
  StreamResult r = run_streaming_string(stages, "", &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, "").output);
  EXPECT_EQ(output, "0\n");
}

TEST(Dataflow, ConcatEmissionKeepsMemoryBounded) {
  // A pure concat pipeline over a large input: peak bytes in flight must
  // stay O(max_inflight · block_size), far below the input size.
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("tr a-z A-Z");
  s.parallel = true;
  s.concat_combiner = true;
  s.combiner_name = "(concat a b)";
  s.combine = [](const std::vector<std::string>& parts)
      -> std::optional<std::string> {
    std::string out;
    for (const auto& p : parts) out += p;
    return out;
  };
  stages.push_back(std::move(s));

  std::string input;
  for (int i = 0; i < 200000; ++i) input += "abcdefghijklmnop\n";  // ~3.4 MB

  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 4096;
  config.max_inflight = 8;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_TRUE(r.nodes[0].streamed_combine);
  // Budget: inflight chunks in the worker stage plus reorder slack; chunks
  // can reach ~2 blocks via coalescing. 4x headroom still << input size.
  std::size_t budget = 4 * config.max_inflight * config.block_size;
  EXPECT_LT(r.peak_inflight_bytes, budget);
  EXPECT_LT(budget, input.size());
}

TEST(Dataflow, CombineFailureFallsBackToBatch) {
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("tr a-z A-Z");
  s.parallel = true;
  s.combiner_name = "(broken)";
  s.combine = [](const std::vector<std::string>&)
      -> std::optional<std::string> { return std::nullopt; };
  stages.push_back(std::move(s));
  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  config.block_size = 4;
  std::string output;
  StreamResult r = run_streaming_string(stages, "ab\ncd\nef\ngh\n", &output,
                                        pool, config);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.batch_fallback);
  EXPECT_EQ(output, "AB\nCD\nEF\nGH\n");
}

TEST(Dataflow, ParallelismOneRunsSequentially) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 1;
  config.block_size = 64;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  for (const auto& node : r.nodes) EXPECT_FALSE(node.parallel);
}

TEST(Dataflow, SinkEarlyStopIsCleanNotAnError) {
  // A head-like sink that refuses data after the first delivery must stop
  // the run cleanly: ok stays true, stopped_early is set, no batch rerun.
  std::vector<exec::ExecStage> stages;
  exec::ExecStage s;
  s.command = cmd::make_command_line("tr a-z A-Z");
  s.parallel = true;
  s.concat_combiner = true;
  s.combiner_name = "(concat a b)";
  s.combine = [](const std::vector<std::string>& parts)
      -> std::optional<std::string> {
    std::string out;
    for (const auto& p : parts) out += p;
    return out;
  };
  stages.push_back(std::move(s));

  std::string input;
  for (int i = 0; i < 5000; ++i) input += "abcdefgh\n";
  std::istringstream in(input);
  int deliveries = 0;
  Sink sink = [&deliveries](std::string_view) { return ++deliveries < 2; };

  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 256;
  StreamResult r = run_streaming(stages, in, sink, pool, config);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.stopped_early);
  EXPECT_FALSE(r.combine_undefined);
  EXPECT_GE(deliveries, 2);
}

// ------------------------------------------- per-block stream chains --

// A sequential streamable stage, classified as compile::lower_plan would.
exec::ExecStage streamable_stage(const char* command_line) {
  exec::ExecStage s;
  s.command = cmd::make_command_line(command_line);
  EXPECT_NE(s.command, nullptr) << command_line;
  EXPECT_NE(s.command->streamability(), cmd::Streamability::kNone)
      << command_line;
  s.memory_class = exec::MemoryClass::kStatelessStream;
  return s;
}

TEST(StreamChain, FusesAdjacentStreamableStagesIntoOneNode) {
  std::vector<exec::ExecStage> stages;
  stages.push_back(streamable_stage("grep a"));
  stages.push_back(streamable_stage("tr a-z A-Z"));
  stages.push_back(streamable_stage("cut -c 1-4"));
  std::string input;
  for (int i = 0; i < 3000; ++i)
    input += (i % 3 ? "alpha beta\n" : "omega\n");

  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 128;
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  // One channel hop for the whole chain, not three.
  ASSERT_EQ(r.nodes.size(), 1u);
  EXPECT_TRUE(r.nodes[0].per_block);
  EXPECT_FALSE(r.nodes[0].parallel);
  EXPECT_EQ(r.nodes[0].commands, "grep a | tr a-z A-Z | cut -c 1-4");
  EXPECT_GT(r.nodes[0].chunks, 1);
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
}

TEST(StreamChain, StatefulProcessorsMatchWholeInputAcrossBlockSizes) {
  // tr -s '\n' (squeeze state crosses block boundaries), sed with line
  // addresses (global line counter), tail +N (skip counter): per-block
  // streaming must be byte-identical to one whole-input execution.
  for (const char* line :
       {"tr -s x", "sed 3d", "tail +5", "sed s/a/A/g"}) {
    std::vector<exec::ExecStage> stages;
    stages.push_back(streamable_stage(line));
    std::string input;
    for (int i = 0; i < 200; ++i)
      input += i % 7 ? "axxa\n" : "xxxx\n";
    input += "tailxx";  // no trailing newline
    exec::ThreadPool pool(2);
    std::string expect = exec::run_serial(stages, input).output;
    for (std::size_t block : {std::size_t(1), std::size_t(5),
                              std::size_t(64), std::size_t(1) << 20}) {
      StreamConfig config;
      config.parallelism = 2;
      config.block_size = block;
      std::string output;
      StreamResult r =
          run_streaming_string(stages, input, &output, pool, config);
      ASSERT_TRUE(r.ok) << line << ": " << r.error;
      EXPECT_EQ(output, expect) << line << " block=" << block;
    }
  }
}

TEST(StreamChain, PrefixEarlyExitStopsTheReader) {
  // head -n 3 over a large input must finish after O(blocks), not drain
  // the stream: the prefix processor reports done, the node cancels
  // upstream, and the BlockReader is never asked for the rest.
  std::vector<exec::ExecStage> stages;
  stages.push_back(streamable_stage("head -n 3"));
  std::string input;
  for (int i = 0; i < 200000; ++i) input += "abcdefghijklmnop\n";  // ~3.4 MB

  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  config.block_size = 4096;
  std::istringstream in(input);
  std::string output;
  Sink sink = [&output](std::string_view bytes) {
    output.append(bytes);
    return true;
  };
  StreamResult r = run_streaming(stages, in, sink, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.stopped_early);  // the *output* is complete, not truncated
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  EXPECT_LT(r.bytes_read, 8 * config.block_size) << "reader kept draining";
}

TEST(StreamChain, HeadOverIdlePipeCompletesWithoutEof) {
  // A pipe receives 20 lines and then goes idle with its write end still
  // open: EOF never arrives. head -n 5 must still complete promptly — the
  // short-read flush delivers the burst's records without waiting for a
  // full block, head satisfies its count, and upstream cancellation (via
  // the poll-driven fd source) stops the reader instead of leaving it in a
  // read(2) that would only return at the next (never-arriving) block
  // boundary. Before the fix this test hung until the ctest timeout.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string burst;
  for (int i = 1; i <= 20; ++i) burst += std::to_string(i) + "\n";
  ASSERT_EQ(::write(fds[1], burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));

  std::vector<exec::ExecStage> stages;
  stages.push_back(streamable_stage("head -n 5"));
  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  std::string output;
  Sink sink = [&output](std::string_view bytes) {
    output.append(bytes);
    return true;
  };
  StreamResult r = run_streaming_fd(stages, fds[0], sink, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output, "1\n2\n3\n4\n5\n");
  ::close(fds[1]);
  ::close(fds[0]);
}

TEST(StreamChain, PrefixEarlyExitCancelsParallelUpstream) {
  // tr runs as a parallel concat segment; head's close must propagate back
  // through the channel so the feeder (and reader) stop — and the clean
  // early exit must not read as a combine failure or batch fallback.
  std::vector<exec::ExecStage> stages;
  {
    exec::ExecStage s;
    s.command = cmd::make_command_line("tr a-z A-Z");
    s.parallel = true;
    s.concat_combiner = true;
    s.combiner_name = "(concat a b)";
    s.combine = [](const std::vector<std::string>& parts)
        -> std::optional<std::string> {
      std::string out;
      for (const auto& p : parts) out += p;
      return out;
    };
    stages.push_back(std::move(s));
  }
  stages.push_back(streamable_stage("head -n 5"));

  std::string input;
  for (int i = 0; i < 200000; ++i) input += "abcdefghijklmnop\n";

  exec::ThreadPool pool(4);
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 4096;
  config.max_inflight = 8;
  std::istringstream in(input);
  std::string output;
  Sink sink = [&output](std::string_view bytes) {
    output.append(bytes);
    return true;
  };
  StreamResult r = run_streaming(stages, in, sink, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.stopped_early);
  EXPECT_FALSE(r.combine_undefined);
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
  // The feeder may have a few blocks in flight when the close lands, but
  // the reader must stop long before the ~3.4 MB input is drained.
  EXPECT_LT(r.bytes_read, input.size() / 4) << "close did not propagate";
}

TEST(StreamChain, DownstreamCloseStopsMaterializeEmission) {
  // awk runs as a sequential materialize stage whose output spans many
  // blocks; head closes after the first, and the failed push must read as
  // a clean early exit (stop emitting), not an error or a spurious
  // combine-undefined.
  std::vector<exec::ExecStage> stages;
  {
    exec::ExecStage s;  // kNone: must materialize
    s.command = cmd::make_command_line("awk '{print $1}'");
    ASSERT_NE(s.command, nullptr);
    stages.push_back(std::move(s));
  }
  stages.push_back(streamable_stage("head -n 1"));
  std::string input;
  for (int i = 0; i < 20000; ++i) input += "word another third\n";
  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  config.block_size = 256;  // awk's output re-blocks into ~400 pushes
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.stopped_early);
  EXPECT_FALSE(r.batch_fallback);
  EXPECT_EQ(output, "word\n");
}

TEST(StreamChain, PrefixAfterExternalSortStopsMergeCleanly) {
  // A forced-spill external sort feeding head: head closes mid-merge, so
  // the sorter's push fails — a clean stop, not "external sort failed".
  std::vector<exec::ExecStage> stages;
  {
    exec::ExecStage s;
    s.command = cmd::make_command_line("sort");
    ASSERT_NE(s.command, nullptr);
    s.memory_class = exec::MemoryClass::kSortableSpill;
    s.sort_spec = cmd::sort_spec_of(*s.command);
    ASSERT_NE(s.sort_spec, nullptr);
    stages.push_back(std::move(s));
  }
  stages.push_back(streamable_stage("head -n 5"));
  std::string input;
  for (int i = 20000; i > 0; --i)
    input += "key" + std::to_string(i) + "\n";
  exec::ThreadPool pool(2);
  StreamConfig config;
  config.parallelism = 2;
  config.block_size = 512;
  config.spill_threshold = 4096;  // force sorted runs onto disk
  std::string output;
  StreamResult r = run_streaming_string(stages, input, &output, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.spilled_bytes, 0u);
  EXPECT_EQ(output, exec::run_serial(stages, input).output);
}

TEST(Dataflow, IstreamToOstream) {
  auto stages = word_count_stages();
  std::string input = sample_words();
  exec::ThreadPool pool(4);
  std::istringstream in(input);
  std::ostringstream out;
  StreamConfig config;
  config.parallelism = 4;
  config.block_size = 128;
  StreamResult r = run_streaming(stages, in, out, pool, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(out.str(), exec::run_serial(stages, input).output);
}

// ----------------------------------------------- catalog cross-validation --

// `--stream` must be byte-identical to `--batch` for every pipeline in the
// 70-script catalog, at a block size small enough to force many blocks.
class StreamCatalogCrossval
    : public ::testing::TestWithParam<const bench::Script*> {
 protected:
  static synth::SynthesisCache& cache() {
    static synth::SynthesisCache c;
    return c;
  }
  static vfs::Vfs& fs() {
    static vfs::Vfs v;
    return v;
  }
};

TEST_P(StreamCatalogCrossval, StreamMatchesBatch) {
  const bench::Script& script = *GetParam();
  std::string input = bench::prepare_input(script, 24 * 1024, 7, fs());
  exec::ThreadPool pool(4);

  for (const std::string& pipeline : script.pipelines) {
    auto parsed = compile::parse_pipeline(pipeline);
    ASSERT_TRUE(parsed.has_value()) << pipeline;
    compile::Plan plan =
        compile::compile_pipeline(*parsed, cache(), {}, &fs());
    compile::eliminate_intermediate_combiners(plan);
    auto stages = compile::lower_plan(plan);

    exec::RunConfig batch_config{4, /*use_elimination=*/true};
    std::string batch =
        exec::run_pipeline(stages, input, pool, batch_config).output;

    StreamConfig config;
    config.parallelism = 4;
    config.block_size = 2048;  // force ~12 blocks per run
    std::string streamed;
    StreamResult r =
        run_streaming_string(stages, input, &streamed, pool, config);
    EXPECT_TRUE(r.ok) << pipeline << ": " << r.error;
    EXPECT_FALSE(r.batch_fallback)
        << pipeline << ": incremental combine bailed: " << r.error;
    EXPECT_EQ(streamed, batch)
        << script.suite << "/" << script.name << ": " << pipeline;

    // Forced-sequential lowering: every streamable stage becomes part of a
    // fused per-block stream chain (kStatelessStream), which must stay
    // byte-identical to the batch output too.
    compile::Plan seq_plan =
        compile::compile_pipeline(*parsed, cache(), {}, &fs());
    for (auto& stage : seq_plan.stages) stage.parallel = false;
    auto seq_stages = compile::lower_plan(seq_plan);
    bool fused = false;
    for (const auto& stage : seq_stages)
      if (stage.memory_class == exec::MemoryClass::kStatelessStream)
        fused = true;
    std::string seq_streamed;
    StreamResult seq_r =
        run_streaming_string(seq_stages, input, &seq_streamed, pool, config);
    EXPECT_TRUE(seq_r.ok) << pipeline << " (sequential): " << seq_r.error;
    EXPECT_EQ(seq_streamed, batch)
        << script.suite << "/" << script.name << " (sequential"
        << (fused ? ", stream-chain" : "") << "): " << pipeline;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScripts, StreamCatalogCrossval,
    ::testing::ValuesIn([] {
      std::vector<const bench::Script*> ptrs;
      for (const bench::Script& s : bench::all_scripts()) ptrs.push_back(&s);
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const bench::Script*>& info) {
      std::string name = info.param->suite + "_" + info.param->name;
      std::string out;
      for (char c : name)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
      return out;
    });

}  // namespace
}  // namespace kq::stream
