// End-to-end synthesis tests (Algorithm 1 + Algorithm 2 + preprocessing):
// for each benchmark command family the synthesizer must find the combiner
// the paper reports (Table 10), reject the commands for which no combiner
// exists (Table 9), and the synthesized combiner must satisfy the
// divide-and-conquer equation on fresh inputs it was never trained on.

#include <gtest/gtest.h>

#include <random>

#include "shape/generate.h"
#include "synth/synthesize.h"
#include "text/shellwords.h"
#include "unixcmd/registry.h"

namespace kq::synth {
namespace {

struct Synthesized {
  cmd::CommandPtr command;
  SynthesisResult result;
};

Synthesized synthesize_line(const std::string& command_line,
                            const vfs::Vfs* fs = nullptr) {
  auto argv = text::shell_split(command_line);
  EXPECT_TRUE(argv.has_value());
  std::string error;
  cmd::CommandPtr c = cmd::make_command(*argv, &error, fs);
  EXPECT_NE(c, nullptr) << command_line << ": " << error;
  SynthesisConfig config;
  return {c, synthesize(*c, *argv, config, fs)};
}

bool has_combiner(const SynthesisResult& r, const std::string& printed) {
  for (const dsl::Combiner& g : r.plausible)
    if (dsl::to_string(g) == printed) return true;
  return false;
}

std::string plausible_list(const SynthesisResult& r) {
  std::string out;
  for (const dsl::Combiner& g : r.plausible) out += dsl::to_string(g) + "  ";
  return out;
}

// Checks f(x1 ++ x2) == g(f(x1), f(x2)) on fresh random splits.
void expect_divide_and_conquer(const Synthesized& s, int trials = 24,
                               std::uint64_t seed = 99) {
  ASSERT_TRUE(s.result.success) << s.command->display_name();
  std::mt19937_64 rng(seed);
  shape::GenOptions gen;
  gen.sorted = s.result.input_class == prep::InputClass::kSortedText;
  if (s.result.input_class == prep::InputClass::kFileNames)
    gen.dictionary = vfs::Vfs::global().names();
  dsl::EvalContext ctx{s.command.get()};
  int checked = 0;
  for (int t = 0; t < trials; ++t) {
    shape::Shape sh = shape::random_shape(rng);
    shape::InputPair pair = shape::generate_pair(sh, gen, rng);
    cmd::Result y1 = s.command->execute(pair.x1);
    cmd::Result y2 = s.command->execute(pair.x2);
    cmd::Result y12 = s.command->execute(pair.joined());
    if (!y1.ok() || !y2.ok() || !y12.ok()) continue;
    auto combined = s.result.combiner.apply(y1.out, y2.out, ctx);
    ASSERT_TRUE(combined.has_value())
        << s.command->display_name() << " combiner undefined on outputs of\n"
        << pair.x1 << "---\n" << pair.x2;
    EXPECT_EQ(*combined, y12.out)
        << s.command->display_name() << " wrong combination for\n"
        << pair.x1 << "---\n" << pair.x2;
    ++checked;
  }
  EXPECT_GT(checked, trials / 2);
}

// ------------------------- command families (§3.4) ----------------------

TEST(Synthesize, TrSimpleGetsConcat) {
  auto s = synthesize_line("tr A-Z a-z");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, TrSqueezeGetsRerunOnly) {
  // tr -cs A-Za-z '\n': concat is wrong at squeeze boundaries; only the
  // rerun combiner survives (§2's counterexample).
  auto s = synthesize_line("tr -cs A-Za-z '\\n'");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_FALSE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
  EXPECT_TRUE(s.result.combiner.rerun_only()) << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, WcLinesGetsBackAdd) {
  auto s = synthesize_line("wc -l");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "((back '\\n' add) a b)"))
      << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, GrepCountGetsBackAdd) {
  auto s = synthesize_line("grep -c '[aeiou]'");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "((back '\\n' add) a b)"))
      << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, GrepSelectGetsConcat) {
  auto s = synthesize_line("grep '[aeiou]'");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, GrepLiteralUsesDictionary) {
  // Without preprocessing the command would output nothing and concat
  // would never be *validated* on nonempty outputs (Table 2's E(g_c)).
  auto s = synthesize_line("grep 'light.light'");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
}

TEST(Synthesize, SortGetsMerge) {
  auto s = synthesize_line("sort");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  bool merge = has_combiner(s.result, "(merge a b)") ||
               has_combiner(s.result, "(merge b a)");
  EXPECT_TRUE(merge) << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, SortRnGetsMergeWithFlags) {
  auto s = synthesize_line("sort -rn");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  bool merge = has_combiner(s.result, "(merge('-nr') a b)") ||
               has_combiner(s.result, "(merge('-nr') b a)");
  EXPECT_TRUE(merge) << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, UniqGetsStitchFirst) {
  auto s = synthesize_line("uniq");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  bool stitch = has_combiner(s.result, "((stitch first) a b)") ||
                has_combiner(s.result, "((stitch second) a b)");
  EXPECT_TRUE(stitch) << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, UniqCountGetsStitch2AddFirst) {
  auto s = synthesize_line("uniq -c");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  bool stitch2 = has_combiner(s.result, "((stitch2 ' ' add first) a b)") ||
                 has_combiner(s.result, "((stitch2 ' ' add second) a b)");
  EXPECT_TRUE(stitch2) << plausible_list(s.result);
  EXPECT_FALSE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, CutFieldsGetsConcat) {
  auto s = synthesize_line("cut -d ',' -f 1");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, HeadGetsFirstFamily) {
  // Table 10 (head -n 1): first / back-first / fuse-first / rerun.
  auto s = synthesize_line("head -n 1");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(first a b)") ||
              has_combiner(s.result, "((back '\\n' first) a b)"))
      << plausible_list(s.result);
}

TEST(Synthesize, TailGetsSecondFamily) {
  auto s = synthesize_line("tail -n 1");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(second a b)") ||
              has_combiner(s.result, "((back '\\n' second) a b)"))
      << plausible_list(s.result);
}

TEST(Synthesize, SedQuitGetsRerun) {
  // sed 100q needs inputs straddling 100 lines (literal extraction) to
  // eliminate concat; rerun is the correct combiner.
  auto s = synthesize_line("sed 100q");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_FALSE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
  EXPECT_TRUE(has_combiner(s.result, "(rerun a b)"))
      << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, SedSubstituteGetsConcat) {
  auto s = synthesize_line("sed s/$/0s/");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
  expect_divide_and_conquer(s);
}

TEST(Synthesize, AwkLengthGetsConcat) {
  auto s = synthesize_line("awk \"length >= 16\"");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
}

TEST(Synthesize, TrDeleteNewlineGetsConcatWithoutElimination) {
  // tr -d '\n': concat combines, but outputs are not newline-terminated,
  // so Theorem 5 elimination must be disabled downstream.
  auto s = synthesize_line("tr -d '\\n'");
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
  EXPECT_FALSE(s.result.outputs_newline_terminated);
}

// ------------------------- unsupported commands (Table 9) ---------------

TEST(SynthesizeUnsupported, SedDeleteFirstLines) {
  for (const char* line : {"sed 1d", "sed 2d", "sed 3d"}) {
    auto s = synthesize_line(line);
    EXPECT_FALSE(s.result.success)
        << line << " unexpectedly got: " << plausible_list(s.result);
  }
}

TEST(SynthesizeUnsupported, TailFromLine) {
  for (const char* line : {"tail +2", "tail +3"}) {
    auto s = synthesize_line(line);
    EXPECT_FALSE(s.result.success)
        << line << " unexpectedly got: " << plausible_list(s.result);
  }
}

// ------------------------- sorted/file-name preprocessing ---------------

TEST(Synthesize, CommClassifiedAsSortedInput) {
  vfs::Vfs fs;
  fs.write("dict.sorted", "apple\nberry\nmelon\nzebra\n");
  auto s = synthesize_line("comm -23 - dict.sorted", &fs);
  EXPECT_EQ(s.result.input_class, prep::InputClass::kSortedText);
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
}

TEST(Synthesize, XargsClassifiedAsFileNames) {
  vfs::Vfs fs;
  for (int i = 0; i < 6; ++i) {
    // Append form: GCC PR 105329 (-Wrestrict).
    std::string name = "f";
    name += std::to_string(i);
    fs.write(name, "line a\nline b\n");
  }
  auto s = synthesize_line("xargs cat", &fs);
  EXPECT_EQ(s.result.input_class, prep::InputClass::kFileNames);
  ASSERT_TRUE(s.result.success) << s.result.failure_reason;
  EXPECT_TRUE(has_combiner(s.result, "(concat a b)"))
      << plausible_list(s.result);
}

// ------------------------- composite selection --------------------------

TEST(Composite, PrefersRecOpClass) {
  auto s = synthesize_line("tr A-Z a-z");
  ASSERT_TRUE(s.result.success);
  ASSERT_FALSE(s.result.combiner.empty());
  EXPECT_EQ(s.result.combiner.primary()->cls(), dsl::OpClass::kRec);
}

TEST(Composite, ConcatEquivalenceDetected) {
  auto s = synthesize_line("tr A-Z a-z");
  ASSERT_TRUE(s.result.success);
  EXPECT_TRUE(s.result.combiner.concat_equivalent());
  auto u = synthesize_line("uniq -c");
  ASSERT_TRUE(u.result.success);
  EXPECT_FALSE(u.result.combiner.concat_equivalent());
}

// ------------------------- diagnostics ----------------------------------

TEST(Diagnostics, SpaceSizeMatchesDelimCount) {
  auto s = synthesize_line("wc -l");
  ASSERT_TRUE(s.result.success);
  auto expect = dsl::count_candidates(s.result.delims.size(), 5);
  EXPECT_EQ(s.result.space.total(), expect.total());
}

TEST(Diagnostics, ReductionRatioLowForWc) {
  auto s = synthesize_line("wc -l");
  ASSERT_TRUE(s.result.success);
  EXPECT_LT(s.result.reduction_ratio, 0.5);
}

TEST(Diagnostics, ReductionRatioHighForTr) {
  auto s = synthesize_line("tr -cs A-Za-z '\\n'");
  ASSERT_TRUE(s.result.success);
  EXPECT_GT(s.result.reduction_ratio, 0.5);
}

TEST(Cache, SynthesizesOncePerCommand) {
  SynthesisCache cache;
  auto argv = text::shell_split("wc -l");
  cmd::CommandPtr c = cmd::make_command(*argv);
  const SynthesisResult& a = cache.get_or_synthesize(*c, *argv);
  const SynthesisResult& b = cache.get_or_synthesize(*c, *argv);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace kq::synth
